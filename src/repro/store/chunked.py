"""``ChunkedTrace``: the memory-mapped reader for ``.ctrc`` store files.

Opening a file validates the header, footer, and crc32-protected index
— never the chunks themselves — so open cost is O(index) regardless of
trace size.  Chunks decode on demand: :meth:`ChunkedTrace.iter_chunks`
yields one :class:`~repro.trace.columnar.ColumnarTrace` per chunk for
bounded-memory simulation, while :meth:`ChunkedTrace.__getitem__` and
record iteration make the reader a drop-in for code written against
``trace.records``.  Raw-codec chunks decode zero-copy as ``mmap``
memoryviews; zlib chunks decompress one at a time onto the heap.

Corruption anywhere — truncation, bad magic, index damage, a chunk
whose crc32 or payload length disagrees with the index — raises
:class:`~repro.errors.TraceFormatError` naming the chunk index and byte
offset, never a bare ``struct.error``.  In lenient mode corrupt chunks
are skipped within an error budget (mirroring the text decoder's
lenient mode) and their stored bytes are quarantined beside the file
(``<path>.quarantine/chunk-NNNN.bin``) for inspection, the same
preserve-don't-delete policy the result cache applies to corrupt
entries.

A ``ChunkedTrace`` pickles as a tiny ``(path, name)`` handle and
reopens the file on first use in the receiving process — the pooled
execution backends therefore ship chunk *handles* to workers instead
of whole traces, and the OS page cache shares the mapped pages between
them.
"""

from __future__ import annotations

import json
import mmap
import zlib
from bisect import bisect_right
from pathlib import Path
from typing import Any, Iterator

from repro.errors import TraceFormatError
from repro.trace.columnar import ColumnarTrace
from repro.trace.io import DecodeReport
from repro.trace.record import TraceRecord

from repro.store.format import (
    CHUNK_CODECS,
    FOOTER,
    HEADER,
    STORE_END_MAGIC,
    STORE_MAGIC,
    STORE_VERSION,
    ChunkInfo,
    chunk_error,
    decode_chunk_columns,
)

#: Corrupt chunks tolerated by default in lenient mode.
DEFAULT_CHUNK_ERROR_BUDGET = 8


class ChunkedTrace:
    """One ``.ctrc`` trace file, read chunk by chunk.

    Duck-compatible with the in-memory trace types: ``name``,
    ``description``, ``cpus``/``pids``, ``len()``, record iteration,
    indexing, and a ``records`` property returning the trace itself
    (slices materialize as :class:`ColumnarTrace` covering only the
    touched chunks).  The chunk-level API —
    :meth:`iter_chunks`, :meth:`chunk`, :meth:`position_of` — is what
    the bounded-memory simulation paths use.

    Args:
        path: the ``.ctrc`` file.
        name: override for the trace name stored in the index.
        lenient: skip corrupt chunks (quarantining their bytes) instead
            of failing on the first, within *error_budget*.
        error_budget: corrupt chunks tolerated before a lenient read
            fails anyway.
        report: optional :class:`~repro.trace.io.DecodeReport`
            receiving skip counts and sampled errors in lenient mode.
    """

    def __init__(
        self,
        path: str | Path,
        name: str | None = None,
        *,
        lenient: bool = False,
        error_budget: int = DEFAULT_CHUNK_ERROR_BUDGET,
        report: DecodeReport | None = None,
    ) -> None:
        self.path = Path(path)
        self._name_override = name
        self.lenient = lenient
        self.error_budget = error_budget
        self.report = report if report is not None else DecodeReport()
        self._handle: Any = None
        self._mm: mmap.mmap | None = None
        self._view: memoryview | None = None
        self._fingerprint: str | None = None
        self._released_upto = 0
        self._ensure_open()

    # ------------------------------------------------------------------
    # Opening and validation
    # ------------------------------------------------------------------

    def _fail(self, message: str) -> TraceFormatError:
        return TraceFormatError(message, path=str(self.path))

    def _ensure_open(self) -> None:
        if self._view is not None:
            return
        try:
            self._handle = open(self.path, "rb")
            size = self.path.stat().st_size
            if size == 0:
                raise self._fail("empty file is not a chunked trace store")
            self._mm = mmap.mmap(
                self._handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        except OSError as exc:
            self.close()
            raise self._fail(f"cannot open chunked trace store: {exc}") from exc
        try:
            self._view = memoryview(self._mm)
            self._parse(size)
        except Exception:
            self.close()
            raise

    def _parse(self, size: int) -> None:
        view = self._view
        assert view is not None
        if size < HEADER.size + FOOTER.size:
            raise self._fail(
                f"truncated store: {size} bytes is smaller than the "
                f"{HEADER.size}-byte header plus {FOOTER.size}-byte footer"
            )
        magic, version, _r16, _r32 = HEADER.unpack_from(view, 0)
        if magic != STORE_MAGIC:
            raise self._fail(
                f"bad magic {bytes(magic)!r}; not a chunked trace store"
            )
        if version != STORE_VERSION:
            raise self._fail(
                f"unsupported store version {version} "
                f"(this reader understands version {STORE_VERSION})"
            )
        index_offset, index_length, index_crc, _r, end_magic = FOOTER.unpack_from(
            view, size - FOOTER.size
        )
        if end_magic != STORE_END_MAGIC:
            raise self._fail(
                "missing end magic in footer — the file is truncated or "
                "was not finalized by the writer"
            )
        if (
            index_offset < HEADER.size
            or index_offset + index_length > size - FOOTER.size
        ):
            raise self._fail(
                f"index location (offset {index_offset}, length "
                f"{index_length}) falls outside the file body"
            )
        index_bytes = bytes(view[index_offset : index_offset + index_length])
        actual_crc = zlib.crc32(index_bytes) & 0xFFFFFFFF
        if actual_crc != index_crc:
            raise self._fail(
                f"index crc32 mismatch (stored {index_crc:#010x}, "
                f"computed {actual_crc:#010x}) — the index is corrupt"
            )
        try:
            meta = json.loads(index_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise self._fail(f"undecodable index JSON: {exc}") from exc
        self.meta = meta
        self.description = str(meta.get("description", ""))
        self.name = self._name_override or str(meta.get("name", self.path.stem))

        chunks: list[ChunkInfo] = []
        start = 0
        for i, entry in enumerate(meta.get("chunks", [])):
            try:
                info = ChunkInfo(
                    index=i,
                    offset=int(entry["offset"]),
                    length=int(entry["length"]),
                    records=int(entry["records"]),
                    crc32=int(entry["crc32"]),
                    codec=str(entry["codec"]),
                    start=start,
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise self._fail(
                    f"malformed index entry for chunk {i}: {exc!r}"
                ) from exc
            if info.codec not in CHUNK_CODECS:
                raise chunk_error(
                    f"unknown chunk codec {info.codec!r}",
                    path=self.path,
                    chunk=info,
                )
            if (
                info.offset < HEADER.size
                or info.offset + info.length > index_offset
                or info.records < 0
            ):
                raise chunk_error(
                    f"chunk body (length {info.length}, {info.records} "
                    "records) falls outside the file's chunk region",
                    path=self.path,
                    chunk=info,
                )
            chunks.append(info)
            start += info.records
        self.chunks = chunks
        self._chunk_starts = [chunk.start for chunk in chunks]
        total = int(meta.get("records", start))
        if total != start:
            raise self._fail(
                f"index claims {total} records but chunk entries sum to {start}"
            )
        self._records = total

    # ------------------------------------------------------------------
    # Chunk access
    # ------------------------------------------------------------------

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def chunk(self, index: int) -> ColumnarTrace:
        """Decode chunk *index* as a :class:`ColumnarTrace`.

        Verifies the stored bytes against the index crc32 first, so a
        flipped bit is reported (with chunk index and byte offset)
        rather than decoded.
        """
        self._ensure_open()
        info = self.chunks[index]
        assert self._view is not None
        stored = self._view[info.offset : info.offset + info.length]
        actual_crc = zlib.crc32(stored) & 0xFFFFFFFF
        if actual_crc != info.crc32:
            raise chunk_error(
                f"crc32 mismatch (stored {info.crc32:#010x}, computed "
                f"{actual_crc:#010x})",
                path=self.path,
                chunk=info,
            )
        cpu, pid, type_code, address, flags = decode_chunk_columns(
            stored, info, self.path
        )
        try:
            return ColumnarTrace(
                self.name, cpu, pid, type_code, address, flags, self.description
            )
        except ValueError as exc:
            raise chunk_error(str(exc), path=self.path, chunk=info) from exc

    def _release_chunk_pages(self, info: ChunkInfo) -> None:
        """Drop a consumed chunk's mapped pages from this process's RSS.

        ``MADV_DONTNEED`` on a read-only file mapping only unmaps the
        PTEs — the page cache keeps the data, so a later re-read (a
        second simulation pass, a kept raw view) soft-faults the pages
        back in.  Without this, a sequential sweep of a raw-codec store
        accumulates the whole file in resident memory and the
        bounded-memory guarantee silently becomes "bounded by the page
        cache's patience".
        """
        if self._mm is None or not hasattr(mmap, "MADV_DONTNEED"):
            return
        page = mmap.PAGESIZE
        start = (info.offset // page) * page
        length = info.offset + info.length - start
        try:
            self._mm.madvise(mmap.MADV_DONTNEED, start, length)
        except (OSError, ValueError):
            pass  # advisory only; RSS stays higher but reads still work

    def iter_chunks(self, start: int = 0) -> Iterator[ColumnarTrace]:
        """Yield each chunk in order as a :class:`ColumnarTrace`.

        At most one decoded chunk is live at a time on the consumer's
        side of the loop — this is the bounded-memory simulation feed.
        Once the consumer advances past a chunk its mapped pages are
        released from resident memory (see :meth:`_release_chunk_pages`).
        In lenient mode corrupt chunks are quarantined and skipped
        within the error budget; strict mode raises on the first.
        """
        for index in range(start, len(self.chunks)):
            try:
                yield self.chunk(index)
                # The consumer asked for the next chunk: this one's
                # pages are no longer needed resident.
                self._release_chunk_pages(self.chunks[index])
            except TraceFormatError as exc:
                if not self.lenient:
                    raise
                self._quarantine_chunk(self.chunks[index])
                self.report.note(exc)
                if self.report.skipped > self.error_budget:
                    raise TraceFormatError(
                        f"error budget exhausted: {self.report.skipped} corrupt "
                        f"chunks exceed the budget of {self.error_budget} "
                        f"(last: {exc})",
                        path=str(self.path),
                    ) from exc

    def _quarantine_chunk(self, info: ChunkInfo) -> None:
        """Preserve a corrupt chunk's stored bytes beside the file."""
        assert self._view is not None
        quarantine = Path(f"{self.path}.quarantine")
        try:
            quarantine.mkdir(exist_ok=True)
            (quarantine / f"chunk-{info.index:04d}.bin").write_bytes(
                self._view[info.offset : info.offset + info.length]
            )
        except OSError:
            # Quarantine is best-effort forensics; the skip itself is
            # already recorded in the report.
            pass

    def release_consumed(self, record_index: int) -> None:
        """Release pages of every chunk fully consumed before *record_index*.

        The windowed (checkpointed) simulation path reads via slices
        rather than :meth:`iter_chunks`; it calls this after each
        window so its resident set stays bounded the same way.  Cheap
        to call repeatedly — already-released chunks are skipped.
        """
        chunk_index, _ = self.position_of(min(record_index, self._records))
        if record_index >= self._records:
            chunk_index = len(self.chunks)
        for index in range(self._released_upto, chunk_index):
            self._release_chunk_pages(self.chunks[index])
        self._released_upto = max(self._released_upto, chunk_index)

    def position_of(self, record_index: int) -> tuple[int, int]:
        """Map a global record index to ``(chunk index, offset in chunk)``.

        ``record_index == len(self)`` maps to ``(num_chunks, 0)`` — the
        exhausted position — so checkpoint manifests can record the
        end-of-trace state uniformly.
        """
        if not 0 <= record_index <= self._records:
            raise IndexError(
                f"record index {record_index} out of range for "
                f"{self._records}-record trace"
            )
        if record_index == self._records:
            return len(self.chunks), 0
        chunk_index = bisect_right(self._chunk_starts, record_index) - 1
        return chunk_index, record_index - self._chunk_starts[chunk_index]

    # ------------------------------------------------------------------
    # Trace duck-typing (records, iteration, slicing)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._records

    @property
    def records(self) -> "ChunkedTrace":
        """Sequence view of the records — the trace itself.

        Mirrors :attr:`ColumnarTrace.records` so code written against
        ``trace.records`` (length, slicing, iteration) works unchanged;
        slices decode only the chunks they touch.
        """
        return self

    @property
    def cpus(self) -> list[int]:
        """Sorted CPU numbers, from the index (no chunk is decoded)."""
        return sorted(int(c) for c in self.meta.get("cpus", []))

    @property
    def pids(self) -> list[int]:
        """Sorted process identifiers, from the index."""
        return sorted(int(p) for p in self.meta.get("pids", []))

    def __iter__(self) -> Iterator[TraceRecord]:
        for chunk in self.iter_chunks():
            yield from chunk

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._records)
            if step != 1:
                raise TypeError("chunked traces support only forward slices")
            return self._slice_columnar(start, stop)
        if index < 0:
            index += self._records
        if not 0 <= index < self._records:
            raise IndexError(index)
        chunk_index, offset = self.position_of(index)
        return self.chunk(chunk_index)[offset]

    def _slice_columnar(self, start: int, stop: int) -> ColumnarTrace:
        """Materialize ``[start:stop)`` from the covering chunks only."""
        if stop <= start:
            return ColumnarTrace(self.name, (), (), (), (), (), self.description)
        first, offset = self.position_of(start)
        pieces: list[ColumnarTrace] = []
        remaining = stop - start
        for index in range(first, len(self.chunks)):
            chunk = self.chunk(index)
            piece = chunk[offset : offset + remaining]
            pieces.append(piece)
            remaining -= len(piece)
            offset = 0
            if remaining == 0:
                break
        if len(pieces) == 1:
            return pieces[0]
        from array import array

        cpu = array("Q")
        pid = array("Q")
        address = array("Q")
        type_code = bytearray()
        flags = bytearray()
        for piece in pieces:
            cpu.extend(piece.cpu)
            pid.extend(piece.pid)
            address.extend(piece.address)
            type_code.extend(piece.type_code)
            flags.extend(piece.flags)
        return ColumnarTrace(
            self.name, cpu, pid, bytes(type_code), address, bytes(flags),
            self.description,
        )

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------

    def fingerprint_into(self, hasher: Any) -> None:
        """Stream the trace content through a fingerprint hasher.

        Decodes (and crc-verifies) one chunk at a time, so the digest is
        over the actual content, not the index's advisory copy.
        """
        for chunk in self.iter_chunks():
            hasher.update_columns(
                chunk.cpu, chunk.pid, chunk.type_code, chunk.address, chunk.flags
            )

    def fingerprint(self) -> str:
        """The canonical content fingerprint (computed once, memoized)."""
        if self._fingerprint is None:
            from repro.trace.fingerprint import fingerprint_trace

            self._fingerprint = fingerprint_trace(self)
        return self._fingerprint

    # ------------------------------------------------------------------
    # Lifecycle and pickling
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the mapping and file handle (reopened on next use)."""
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                # Decoded raw chunks still hold zero-copy views into the
                # map; the map stays alive until they are collected.
                pass
            self._mm = None
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def __enter__(self) -> "ChunkedTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __getstate__(self) -> dict[str, Any]:
        # A chunked trace crosses process boundaries as a handle, not as
        # data: workers reopen the file and the OS page cache shares the
        # mapped pages between them.
        return {
            "path": str(self.path),
            "name": self._name_override,
            "lenient": self.lenient,
            "error_budget": self.error_budget,
            "fingerprint": self._fingerprint,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(
            state["path"],
            state["name"],
            lenient=state["lenient"],
            error_budget=state["error_budget"],
        )
        self._fingerprint = state.get("fingerprint")

    def __repr__(self) -> str:
        return (
            f"ChunkedTrace({str(self.path)!r}, name={self.name!r}, "
            f"records={self._records}, chunks={len(self.chunks)})"
        )


def open_chunked_trace(
    path: str | Path, name: str | None = None, **options: Any
) -> ChunkedTrace:
    """Open a ``.ctrc`` store file (validating header, footer, index)."""
    return ChunkedTrace(path, name, **options)
