"""repro.store — the chunked, compressed, on-disk columnar trace store.

A ``.ctrc`` file holds one multiprocessor address trace as a sequence
of independently decodable chunks, each storing the exact
:class:`~repro.trace.columnar.ColumnarTrace` column layout (cpu, pid,
address as little-endian 64-bit words; type codes and flag bitmasks as
bytes), either raw — memory-mappable, decoded zero-copy — or
zlib-compressed.  A footer-addressed index carries per-chunk
``(offset, length, record count, crc32, codec)`` entries plus trace
metadata (name, sharer-id sets, an advisory content fingerprint), so
opening a file is O(index), not O(records).

The pieces:

* :class:`~repro.store.writer.StreamingTraceWriter` — append records
  (or column batches) and chunks are flushed incrementally; the full
  trace never exists in memory.
* :class:`~repro.store.chunked.ChunkedTrace` — the reader: sequential
  chunk iteration for bounded-memory simulation, record iteration and
  slicing for everything written against ``trace.records``, and a
  streaming content fingerprint identical to the in-memory one.
* :func:`~repro.store.writer.pack_trace` / CLI ``repro trace
  pack|info|gen`` — conversion and inspection tooling.

See ``docs/TRACESTORE.md`` for the format specification and
chunk-size guidance.
"""

from repro.store.chunked import ChunkedTrace, open_chunked_trace
from repro.store.format import (
    CHUNK_CODECS,
    DEFAULT_CHUNK_RECORDS,
    STORE_VERSION,
    ChunkInfo,
    is_chunked_trace,
)
from repro.store.writer import StreamingTraceWriter, pack_trace, write_stream

__all__ = [
    "CHUNK_CODECS",
    "DEFAULT_CHUNK_RECORDS",
    "STORE_VERSION",
    "ChunkInfo",
    "ChunkedTrace",
    "StreamingTraceWriter",
    "is_chunked_trace",
    "open_chunked_trace",
    "pack_trace",
    "write_stream",
]
