"""Streaming ``.ctrc`` writer: generators in, bounded memory, chunks out.

:class:`StreamingTraceWriter` accepts records (or bulk column slices)
and flushes a chunk to disk every ``chunk_records`` references, so a
workload generator can emit a trace of any length while the writer
holds at most one chunk's columns.  Alongside the chunks it maintains:

* the sharer-id sets (distinct cpus and pids) — stored in the index so
  readers can size machines without scanning the file;
* a streaming content fingerprint
  (:class:`~repro.trace.fingerprint.TraceHasher`) — stored as advisory
  metadata and byte-identical to the in-memory fingerprint;
* per-chunk crc32 checksums over the stored bytes.

Writes land in a ``<path>.tmp`` sibling and are renamed into place on
:meth:`close`, so a crashed or aborted generation never leaves a
half-written file behind under the final name.
"""

from __future__ import annotations

import json
import os
import zlib
from array import array
from pathlib import Path
from typing import Any, Iterable

from repro.errors import TraceFormatError
from repro.trace.columnar import ColumnarTrace
from repro.trace.fingerprint import TraceHasher
from repro.trace.record import RefType, TraceRecord

from repro.store.format import (
    CHUNK_CODECS,
    DEFAULT_CHUNK_RECORDS,
    FOOTER,
    HEADER,
    STORE_END_MAGIC,
    STORE_MAGIC,
    STORE_VERSION,
    align8,
    encode_chunk_payload,
    store_chunk,
)

_TYPE_TO_CODE = {RefType.INSTR: 0, RefType.READ: 1, RefType.WRITE: 2}


class StreamingTraceWriter:
    """Incrementally writes one trace to a ``.ctrc`` file.

    Use as a context manager: a clean exit finalizes the file, an
    exception aborts it (the temporary file is removed and the target
    path is left untouched)::

        with StreamingTraceWriter("big.ctrc", name="pops") as writer:
            for record in generate():
                writer.append(record)

    Args:
        path: destination file (conventionally ``.ctrc``).
        name: trace name stored in the index (defaults to the stem).
        description: free-form provenance note.
        codec: per-chunk storage codec, ``"zlib"`` (default) or
            ``"raw"`` (larger, but readers decode it zero-copy from
            ``mmap``).
        chunk_records: references per chunk — the writer's and every
            reader's memory granule (see ``docs/TRACESTORE.md`` for
            sizing guidance).
        level: zlib compression level (ignored for ``raw``).
    """

    def __init__(
        self,
        path: str | Path,
        name: str | None = None,
        *,
        description: str = "",
        codec: str = "zlib",
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        level: int = 6,
    ) -> None:
        if codec not in CHUNK_CODECS:
            raise ValueError(
                f"unknown chunk codec {codec!r}; supported: {CHUNK_CODECS}"
            )
        if chunk_records < 1:
            raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
        self.path = Path(path)
        self.name = name or self.path.stem
        self.description = description
        self.codec = codec
        self.chunk_records = chunk_records
        self.level = level

        self._tmp = self.path.with_name(self.path.name + ".tmp")
        self._handle: Any = open(self._tmp, "wb")
        self._handle.write(HEADER.pack(STORE_MAGIC, STORE_VERSION, 0, 0))
        self._offset = HEADER.size
        self._chunks: list[dict[str, Any]] = []
        self._records = 0
        self._cpus: set[int] = set()
        self._pids: set[int] = set()
        self._hasher = TraceHasher()
        self._closed = False

        self._cpu = array("Q")
        self._pid = array("Q")
        self._address = array("Q")
        self._type = bytearray()
        self._flags = bytearray()

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    @property
    def records_written(self) -> int:
        """References accepted so far (buffered chunk included)."""
        return self._records + len(self._type)

    def append(self, record: TraceRecord) -> None:
        """Append one record, flushing a chunk when the buffer fills."""
        self._cpu.append(record.cpu)
        self._pid.append(record.pid)
        self._address.append(record.address)
        self._type.append(_TYPE_TO_CODE[record.ref_type])
        self._flags.append(
            (1 if record.system else 0)
            | (2 if record.lock else 0)
            | (4 if record.spin else 0)
        )
        if len(self._type) >= self.chunk_records:
            self._flush_chunk()

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Append a run of records."""
        for record in records:
            self.append(record)

    def append_columns(
        self, cpu: Any, pid: Any, type_code: Any, address: Any, flags: Any
    ) -> None:
        """Append a run of parallel columns (the bulk packing path)."""
        lengths = {len(cpu), len(pid), len(type_code), len(address), len(flags)}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")
        position = 0
        total = len(type_code)
        while position < total:
            take = min(self.chunk_records - len(self._type), total - position)
            stop = position + take
            self._cpu.extend(cpu[position:stop])
            self._pid.extend(pid[position:stop])
            self._address.extend(address[position:stop])
            self._type.extend(type_code[position:stop])
            self._flags.extend(flags[position:stop])
            position = stop
            if len(self._type) >= self.chunk_records:
                self._flush_chunk()

    # ------------------------------------------------------------------
    # Chunk flushing and finalization
    # ------------------------------------------------------------------

    def _flush_chunk(self) -> None:
        count = len(self._type)
        if count == 0:
            return
        type_bytes = bytes(self._type)
        if type_bytes and max(type_bytes) > 2:
            bad = next(i for i, code in enumerate(type_bytes) if code > 2)
            raise TraceFormatError(
                f"invalid reference-type code {type_bytes[bad]} at record "
                f"{self._records + bad}",
                path=str(self.path),
                record=self._records + bad,
            )
        flag_bytes = bytes(self._flags)
        self._hasher.update_columns(
            self._cpu, self._pid, type_bytes, self._address, flag_bytes
        )
        self._cpus.update(self._cpu)
        self._pids.update(self._pid)

        payload = encode_chunk_payload(
            self._cpu, self._pid, self._address, type_bytes, flag_bytes
        )
        stored = store_chunk(payload, self.codec, self.level)
        aligned = align8(self._offset)
        if aligned != self._offset:
            self._handle.write(b"\x00" * (aligned - self._offset))
            self._offset = aligned
        self._handle.write(stored)
        self._chunks.append(
            {
                "offset": self._offset,
                "length": len(stored),
                "records": count,
                "crc32": zlib.crc32(stored) & 0xFFFFFFFF,
                "codec": self.codec,
            }
        )
        self._offset += len(stored)
        self._records += count

        self._cpu = array("Q")
        self._pid = array("Q")
        self._address = array("Q")
        self._type = bytearray()
        self._flags = bytearray()

    def close(self) -> dict[str, Any]:
        """Flush, write the index and footer, and rename into place.

        Returns the index metadata that was written (chunk entries,
        totals, fingerprint).  Idempotent.
        """
        if self._closed:
            return self._meta
        self._flush_chunk()
        meta = {
            "version": STORE_VERSION,
            "name": self.name,
            "description": self.description,
            "records": self._records,
            "chunk_records": self.chunk_records,
            "cpus": sorted(self._cpus),
            "pids": sorted(self._pids),
            "fingerprint": self._hasher.hexdigest(),
            "chunks": self._chunks,
        }
        index_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
        index_offset = align8(self._offset)
        if index_offset != self._offset:
            self._handle.write(b"\x00" * (index_offset - self._offset))
        self._handle.write(index_bytes)
        self._handle.write(
            FOOTER.pack(
                index_offset,
                len(index_bytes),
                zlib.crc32(index_bytes) & 0xFFFFFFFF,
                0,
                STORE_END_MAGIC,
            )
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        os.replace(self._tmp, self.path)
        self._closed = True
        self._meta = meta
        return meta

    def abort(self) -> None:
        """Discard the in-progress file (the target path is untouched)."""
        if self._closed:
            return
        self._closed = True
        self._meta = {}
        try:
            self._handle.close()
        except OSError:
            pass
        try:
            self._tmp.unlink()
        except OSError:
            pass

    def __enter__(self) -> "StreamingTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_stream(
    records: Iterable[TraceRecord],
    path: str | Path,
    name: str | None = None,
    **options: Any,
) -> dict[str, Any]:
    """Stream a record iterable into a ``.ctrc`` file; returns the metadata."""
    with StreamingTraceWriter(path, name, **options) as writer:
        writer.extend(records)
    return writer.close()


def pack_trace(trace: Any, path: str | Path, **options: Any) -> dict[str, Any]:
    """Pack any trace representation into a ``.ctrc`` file.

    Columnar traces (and chunked traces, chunk by chunk) take the bulk
    column path; record-backed and lazy traces stream record by record.
    Returns the written index metadata.
    """
    options.setdefault("name", getattr(trace, "name", None))
    options.setdefault("description", getattr(trace, "description", ""))
    with StreamingTraceWriter(path, **options) as writer:
        chunk_iter = getattr(trace, "iter_chunks", None)
        if chunk_iter is not None:
            for chunk in chunk_iter():
                writer.append_columns(
                    chunk.cpu, chunk.pid, chunk.type_code, chunk.address, chunk.flags
                )
        elif isinstance(trace, ColumnarTrace):
            writer.append_columns(
                trace.cpu, trace.pid, trace.type_code, trace.address, trace.flags
            )
        else:
            writer.extend(trace.records if hasattr(trace, "records") else trace)
    return writer.close()
