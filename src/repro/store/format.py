"""The ``.ctrc`` on-disk format: structs, layout math, chunk codecs.

File layout (all integers little-endian)::

    +--------------------+  offset 0
    | header (16 bytes)  |  magic "RPROCTRC", version u16, reserved
    +--------------------+
    | chunk 0 payload    |  8-byte aligned; zero padding between chunks
    | chunk 1 payload    |
    | ...                |
    +--------------------+
    | index (JSON)       |  utf-8, crc32-protected
    +--------------------+
    | footer (32 bytes)  |  index offset/length/crc32, end magic
    +--------------------+  end of file

The index is written *after* the chunks (zip-style) so a
:class:`~repro.store.writer.StreamingTraceWriter` never needs to know
the chunk count up front; readers find it through the fixed-size
footer at the end of the file.  Truncation therefore destroys the
footer magic and is detected before any chunk is trusted.

Each chunk payload stores ``records`` references in the exact
:class:`~repro.trace.columnar.ColumnarTrace` column layout::

    cpu  [records x 8 bytes, u64 LE]
    pid  [records x 8 bytes, u64 LE]
    addr [records x 8 bytes, u64 LE]
    type [records x 1 byte]
    flag [records x 1 byte]

— 26 bytes per record — either verbatim (codec ``raw``, decoded
zero-copy as ``mmap`` memoryviews) or zlib-compressed (codec
``zlib``).  The per-chunk crc32 covers the *stored* bytes, so
integrity is checked without decompressing.

Index JSON shape (``version`` 1)::

    {
      "version": 1,
      "name": "...", "description": "...",
      "records": <total>, "chunk_records": <nominal chunk size>,
      "cpus": [...], "pids": [...],          # sorted sharer-id sets
      "fingerprint": "<sha256 hex>",         # advisory content hash
      "chunks": [
        {"offset": o, "length": n, "records": r, "crc32": c, "codec": "raw"|"zlib"},
        ...
      ]
    }
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import TraceFormatError

STORE_MAGIC = b"RPROCTRC"
STORE_END_MAGIC = b"RPROCEND"
STORE_VERSION = 1

#: magic, version, reserved u16, reserved u32
HEADER = struct.Struct("<8sHHI")
#: index offset, index length, index crc32, reserved u32, end magic
FOOTER = struct.Struct("<QQII8s")

#: Supported chunk codecs.
CHUNK_CODECS = ("raw", "zlib")

#: Default references per chunk (~6.5 MiB raw): large enough that the
#: per-chunk kernel/session overhead is negligible, small enough that a
#: zlib chunk decodes into a modest heap allocation.
DEFAULT_CHUNK_RECORDS = 262_144

_WORD = 8
#: Stored bytes per record across the five columns (3*8 + 1 + 1).
RECORD_BYTES = 3 * _WORD + 2


def chunk_raw_size(records: int) -> int:
    """Uncompressed payload size of a chunk holding *records* references."""
    return records * RECORD_BYTES


def align8(offset: int) -> int:
    """Round *offset* up to the next 8-byte boundary."""
    return (offset + _WORD - 1) & ~(_WORD - 1)


@dataclass(frozen=True)
class ChunkInfo:
    """One chunk's index entry.

    Attributes:
        index: position of the chunk within the file (0-based).
        offset: byte offset of the stored payload within the file.
        length: stored payload length in bytes (compressed for zlib).
        records: references encoded in the chunk.
        crc32: checksum of the stored bytes.
        codec: ``"raw"`` or ``"zlib"``.
        start: global record index of the chunk's first reference.
    """

    index: int
    offset: int
    length: int
    records: int
    crc32: int
    codec: str
    start: int

    def to_json(self) -> dict[str, Any]:
        return {
            "offset": self.offset,
            "length": self.length,
            "records": self.records,
            "crc32": self.crc32,
            "codec": self.codec,
        }


def chunk_error(
    message: str, *, path: str | Path, chunk: ChunkInfo | None = None
) -> TraceFormatError:
    """A :class:`TraceFormatError` locating one chunk of a store file.

    The message names the chunk index and byte offset; the exception's
    ``record`` attribute carries the chunk's first global record index
    so callers can map the damage back to trace positions.
    """
    if chunk is None:
        return TraceFormatError(message, path=str(path))
    return TraceFormatError(
        f"chunk {chunk.index} at byte offset {chunk.offset}: {message}",
        path=str(path),
        record=chunk.start,
    )


def encode_chunk_payload(
    cpu: Any, pid: Any, address: Any, type_code: Any, flags: Any
) -> bytes:
    """Pack five parallel columns into one raw chunk payload."""

    def word_bytes(column: Any) -> bytes:
        if isinstance(column, array):
            if sys.byteorder != "little":  # pragma: no cover - big-endian host
                column = array("Q", column)
                column.byteswap()
            return column.tobytes()
        if isinstance(column, memoryview):
            return bytes(column.cast("B") if column.format != "B" else column)
        packed = array("Q", column)
        if sys.byteorder != "little":  # pragma: no cover - big-endian host
            packed.byteswap()
        return packed.tobytes()

    return b"".join(
        (
            word_bytes(cpu),
            word_bytes(pid),
            word_bytes(address),
            bytes(type_code),
            bytes(flags),
        )
    )


def store_chunk(payload: bytes, codec: str, level: int = 6) -> bytes:
    """The on-disk bytes for one raw chunk payload under *codec*."""
    if codec == "raw":
        return payload
    if codec == "zlib":
        return zlib.compress(payload, level)
    raise ValueError(f"unknown chunk codec {codec!r}; supported: {CHUNK_CODECS}")


def decode_chunk_columns(
    stored: Any, chunk: ChunkInfo, path: str | Path
) -> tuple[Any, Any, Any, Any, Any]:
    """Decode one chunk's stored bytes into the five trace columns.

    Returns ``(cpu, pid, type_code, address, flags)``.  For raw chunks
    backed by a ``memoryview`` (the mmap path) the word columns come
    back as zero-copy ``cast("Q")`` views and the byte columns as
    plain slices; zlib chunks decompress onto the heap.  Corruption —
    wrong length, undecodable zlib stream, out-of-range type codes —
    raises :class:`~repro.errors.TraceFormatError` via
    :func:`chunk_error`.
    """
    n = chunk.records
    if chunk.codec == "zlib":
        try:
            data: Any = zlib.decompress(bytes(stored))
        except zlib.error as exc:
            raise chunk_error(
                f"undecodable zlib payload ({exc})", path=path, chunk=chunk
            ) from exc
    elif chunk.codec == "raw":
        data = stored
    else:
        raise chunk_error(
            f"unknown chunk codec {chunk.codec!r}", path=path, chunk=chunk
        )
    if len(data) != chunk_raw_size(n):
        raise chunk_error(
            f"payload decodes to {len(data)} bytes, expected "
            f"{chunk_raw_size(n)} for {n} records",
            path=path,
            chunk=chunk,
        )

    view = data if isinstance(data, memoryview) else memoryview(data)
    word = n * _WORD

    def words(start: int) -> Any:
        segment = view[start : start + word]
        if sys.byteorder != "little":  # pragma: no cover - big-endian host
            swapped = array("Q", segment.tobytes())
            swapped.byteswap()
            return swapped
        return segment.cast("Q")

    cpu = words(0)
    pid = words(word)
    address = words(2 * word)
    type_code = view[3 * word : 3 * word + n]
    flags = view[3 * word + n : 3 * word + 2 * n]
    return cpu, pid, type_code, address, flags


def is_chunked_trace(path: str | Path) -> bool:
    """True when *path* starts with the ``.ctrc`` store magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(STORE_MAGIC)) == STORE_MAGIC
    except OSError:
        return False
