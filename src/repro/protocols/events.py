"""Event taxonomy (paper Table 4) and abstract bus operations.

The paper computes performance in two stages: (1) simulate each scheme
once to measure **event frequencies** — how often each kind of
reference occurs — then (2) weight events by per-event **bus-cycle
costs** for a given bus model.  :class:`EventType` is the Table 4
legend; :class:`BusOp` is the cost-model-independent description of the
bus work one reference performs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventType(enum.Enum):
    """Reference classification, matching the legend of paper Table 4."""

    INSTR = "instr"
    RD_HIT = "rd-hit"
    RM_BLK_CLN = "rm-blk-cln"
    RM_BLK_DRTY = "rm-blk-drty"
    RM_FIRST_REF = "rm-first-ref"
    WH_BLK_CLN = "wh-blk-cln"
    WH_BLK_DRTY = "wh-blk-drty"
    WH_DISTRIB = "wh-distrib"
    WH_LOCAL = "wh-local"
    WM_BLK_CLN = "wm-blk-cln"
    WM_BLK_DRTY = "wm-blk-drty"
    WM_FIRST_REF = "wm-first-ref"

    @property
    def is_read(self) -> bool:
        """True for read events/references."""
        return self in _READ_EVENTS

    @property
    def is_write(self) -> bool:
        """True for write events/references."""
        return self in _WRITE_EVENTS

    @property
    def is_read_miss(self) -> bool:
        """Coherence read misses (first references excluded, as in Table 4)."""
        return self in (EventType.RM_BLK_CLN, EventType.RM_BLK_DRTY)

    @property
    def is_write_miss(self) -> bool:
        """Coherence write misses (first references excluded)."""
        return self in (EventType.WM_BLK_CLN, EventType.WM_BLK_DRTY)

    @property
    def is_write_hit(self) -> bool:
        """True for the write-hit event family."""
        return self in (
            EventType.WH_BLK_CLN,
            EventType.WH_BLK_DRTY,
            EventType.WH_DISTRIB,
            EventType.WH_LOCAL,
        )

    @property
    def is_first_ref(self) -> bool:
        """First reference to a block: occurs in a uniprocessor too (§4)."""
        return self in (EventType.RM_FIRST_REF, EventType.WM_FIRST_REF)


_READ_EVENTS = frozenset(
    {
        EventType.RD_HIT,
        EventType.RM_BLK_CLN,
        EventType.RM_BLK_DRTY,
        EventType.RM_FIRST_REF,
    }
)
_WRITE_EVENTS = frozenset(
    {
        EventType.WH_BLK_CLN,
        EventType.WH_BLK_DRTY,
        EventType.WH_DISTRIB,
        EventType.WH_LOCAL,
        EventType.WM_BLK_CLN,
        EventType.WM_BLK_DRTY,
        EventType.WM_FIRST_REF,
    }
)


class OpKind(enum.Enum):
    """Abstract bus operations (priced by :mod:`repro.cost.bus`)."""

    MEM_ACCESS = "mem-access"
    """Fetch a block from main memory (address + 4 data words)."""

    CACHE_ACCESS = "cache-access"
    """Fetch a block supplied by another cache."""

    WRITE_BACK = "write-back"
    """Flush a dirty block to memory; the requesting cache also receives
    the data during the transfer (paper Section 4.3)."""

    WRITE_WORD = "write-word"
    """A single-word write on the bus: WTI write-through or Dragon
    write update (the Table 5 "wt or wup" category)."""

    DIR_CHECK = "dir-check"
    """A standalone directory probe (not overlapped with any memory
    access), e.g. Dir0B's write hit to a clean block."""

    DIR_CHECK_OVERLAPPED = "dir-check-overlapped"
    """A directory probe fully overlapped with a memory access or
    write-back; costs zero extra bus cycles in both bus models."""

    INVALIDATE = "invalidate"
    """Point-to-point (sequential) invalidation messages; ``count`` is
    the number of messages."""

    BROADCAST_INVALIDATE = "broadcast-invalidate"
    """A bus-wide invalidate; the paper charges 1 cycle by default but
    Section 6 studies the cost as a parameter b."""

    SINGLE_BIT_UPDATE = "single-bit-update"
    """Yen & Fu's refinement (Section 2): a bus message keeping a
    cache's "single" bit current when a block gains a second holder —
    the "extra bus bandwidth consumed to keep the single bits updated"."""


@dataclass(frozen=True, slots=True)
class BusOp:
    """One abstract bus operation with a repetition count."""

    kind: OpKind
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"count must be non-negative, got {self.count}")


def mem_access() -> BusOp:
    """Construct a block-fetch-from-memory bus operation."""
    return BusOp(OpKind.MEM_ACCESS)


def cache_access() -> BusOp:
    """Construct a cache-to-cache block supply operation."""
    return BusOp(OpKind.CACHE_ACCESS)


def write_back() -> BusOp:
    """Construct a dirty-block write-back operation."""
    return BusOp(OpKind.WRITE_BACK)


def write_word() -> BusOp:
    """Construct a single-word write (write-through/update)."""
    return BusOp(OpKind.WRITE_WORD)


def dir_check() -> BusOp:
    """Construct a standalone directory probe."""
    return BusOp(OpKind.DIR_CHECK)


def dir_check_overlapped() -> BusOp:
    """Construct a memory-overlapped (free) directory probe."""
    return BusOp(OpKind.DIR_CHECK_OVERLAPPED)


def invalidate(count: int = 1) -> BusOp:
    """Construct *count* point-to-point invalidation messages."""
    return BusOp(OpKind.INVALIDATE, count)


def broadcast_invalidate() -> BusOp:
    """Construct a bus-wide invalidate."""
    return BusOp(OpKind.BROADCAST_INVALIDATE)


def single_bit_update() -> BusOp:
    """Construct a Yen-Fu single-bit maintenance message."""
    return BusOp(OpKind.SINGLE_BIT_UPDATE)


@dataclass(frozen=True, slots=True)
class ProtocolResult:
    """What one data reference did: its event class and its bus work.

    Attributes:
        event: the Table-4 classification of this reference.
        ops: abstract bus operations the transaction performed.
        clean_write_sharers: for a write to a previously-clean block,
            the number of *other* caches that held the block (the
            Figure 1 histogram population); None for other references.
        wasted_invalidations: invalidation messages sent to caches that
            held no copy (coarse-vector directories only).
        pointer_evictions: sharer copies displaced by DiriNB pointer
            overflow while servicing this reference.
        directory_recalls: directory entries recalled (evicted with
            sharer invalidation) to make room while servicing this
            reference; nonzero only under a finite directory capacity.
    """

    event: EventType
    ops: tuple[BusOp, ...] = ()
    clean_write_sharers: int | None = None
    wasted_invalidations: int = 0
    pointer_evictions: int = 0
    directory_recalls: int = 0

    @property
    def uses_bus(self) -> bool:
        """True if this reference generated any bus operation at all."""
        return bool(self.ops)


RESULT_INSTR = ProtocolResult(EventType.INSTR)
RESULT_RD_HIT = ProtocolResult(EventType.RD_HIT)

# Shared instances for the other high-frequency outcomes.  These carry
# no per-reference data (ProtocolResult is frozen), so protocols return
# them instead of constructing an identical object per reference; the
# simulator's columnar fast path additionally exploits the identity of
# consecutive outcomes to batch result accumulation.
RESULT_WH_BLK_DRTY = ProtocolResult(EventType.WH_BLK_DRTY)
RESULT_WH_LOCAL = ProtocolResult(EventType.WH_LOCAL)
RESULT_WH_DISTRIB = ProtocolResult(EventType.WH_DISTRIB, (BusOp(OpKind.WRITE_WORD),))
