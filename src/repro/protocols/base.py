"""Base classes for coherence protocol state machines.

A protocol owns the per-cache line states for every cache in the
simulated machine (and, for directory schemes, the directory
organization).  The simulator feeds it data references one at a time
via :meth:`CoherenceProtocol.on_read` / :meth:`CoherenceProtocol.on_write`;
instruction fetches never reach protocols (the paper assumes
instructions cause no coherence traffic, Section 4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Mapping

from repro.memory.cache import CacheModel, InfiniteCache
from repro.protocols.events import ProtocolResult, invalidate, write_back


class CoherenceProtocol(ABC):
    """Interface every coherence protocol implements.

    Class attributes (overridden per protocol) describe the protocol's
    invariants so the generic checker in
    :mod:`repro.core.invariants` can validate them:

    * ``name`` — registry identifier (e.g. ``"dir1nb"``).
    * ``max_copies`` — maximum simultaneous cached copies of one block
      allowed by the state-change model (None = unbounded).
    * ``writes_through`` — True if memory is always current (WTI).
    * ``update_based`` — True for update (non-invalidating) protocols.
    """

    name: str = "abstract"
    max_copies: int | None = None
    writes_through: bool = False
    update_based: bool = False

    def __init__(self, num_caches: int, cache_factory=InfiniteCache) -> None:
        if num_caches < 1:
            raise ValueError(f"num_caches must be >= 1, got {num_caches}")
        self._num_caches = num_caches
        self._caches: list[CacheModel] = [cache_factory() for _ in range(num_caches)]

    @property
    def num_caches(self) -> int:
        """Number of caches in the machine."""
        return self._num_caches

    def _check_cache_index(self, cache: int) -> None:
        if not 0 <= cache < self._num_caches:
            raise ValueError(
                f"cache index {cache} out of range [0, {self._num_caches})"
            )

    @abstractmethod
    def on_read(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Process a data read of *block* by *cache*.

        *first_ref* is True when no data reference in the trace has
        touched this block before; the protocol must classify it as a
        first-reference miss (charged zero bus cycles, Section 4).
        """

    @abstractmethod
    def on_write(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Process a data write of *block* by *cache*."""

    def holders(self, block: int) -> Mapping[int, object]:
        """Map of cache index -> line state for caches holding *block*.

        Used by invariant checking and tests; the default walks the
        per-cache line maps.
        """
        found = {}
        for index, cache in enumerate(self._caches):
            state = cache.get(block)
            if state is not None:
                found[index] = state
        return found

    def tracked_blocks(self) -> set[int]:
        """Every block currently resident in at least one cache."""
        blocks: set[int] = set()
        for cache in self._caches:
            blocks.update(cache.blocks())
        return blocks

    def cache_contents(self, cache: int) -> dict[int, object]:
        """Snapshot of one cache's block -> state map (for tests)."""
        self._check_cache_index(cache)
        return {block: self._caches[cache].get(block) for block in self._caches[cache].blocks()}


class SnoopyProtocol(CoherenceProtocol):
    """Marker base class for bus-snooping protocols (WTI, Dragon)."""

    scheme_kind = "snoopy"


class DirectoryProtocol(CoherenceProtocol):
    """Base class for directory protocols; adds the directory organization.

    Args:
        dir_capacity: maximum number of blocks the directory can track
            at once (a sparse-directory entry bound).  When the bound is
            hit, the least-recently-consulted entry is *recalled*: its
            cached copies are invalidated (a dirty copy is written back
            first) so the entry can be reused.  ``None`` — the paper's
            model — tracks every block ever referenced.
    """

    scheme_kind = "directory"

    def __init__(
        self,
        num_caches: int,
        directory,
        cache_factory=InfiniteCache,
        dir_capacity: int | None = None,
    ) -> None:
        super().__init__(num_caches, cache_factory=cache_factory)
        self._directory = directory
        if dir_capacity is not None and dir_capacity < 1:
            raise ValueError(f"dir_capacity must be >= 1, got {dir_capacity}")
        self.dir_capacity = dir_capacity
        # Entry recency, least-recently-consulted first.  Only consulted
        # (and only populated) when dir_capacity is bounded.
        self._dir_lru: OrderedDict[int, None] = OrderedDict()

    @property
    def directory(self):
        """The directory organization backing this protocol."""
        return self._directory

    def directory_bits_per_block(self) -> int:
        """Storage cost of this protocol's directory (Section 6)."""
        return self._directory.bits_per_block()

    # -- finite directory capacity (sparse-directory extension) --------

    def _touch_directory(self, block: int) -> None:
        """Refresh *block*'s entry recency on a directory consultation."""
        if self.dir_capacity is None:
            return
        if block in self._dir_lru:
            self._dir_lru.move_to_end(block)

    def _ensure_directory_capacity(self, block: int, ops: list) -> int:
        """Allocate a directory entry for *block*, recalling as needed.

        Returns the number of entries recalled (evicted while still
        holding cached copies).  Entries whose copies have all left the
        caches are reclaimed silently.  Bus operations for recalls
        (write-backs, invalidation messages) are appended to *ops*.
        """
        if self.dir_capacity is None:
            return 0
        lru = self._dir_lru
        if block in lru:
            lru.move_to_end(block)
            return 0
        recalls = 0
        while len(lru) >= self.dir_capacity:
            victim, _ = lru.popitem(last=False)
            if self._recall_block(victim, ops):
                recalls += 1
        lru[block] = None
        return recalls

    def _recall_block(self, victim: int, ops: list) -> bool:
        """Invalidate every cached copy of *victim* and clear its entry.

        A dirty copy is written back first.  Returns True when any copy
        was actually displaced (a stale, holder-less entry reclaims for
        free).
        """
        holders = [
            (index, state)
            for index, cache in enumerate(self._caches)
            if (state := cache.get(victim)) is not None
        ]
        if not holders:
            self._directory.note_all_invalidated(victim)
            return False
        dirty_owner = next(
            (index for index, state in holders if getattr(state, "is_dirty", False)),
            None,
        )
        if dirty_owner is not None:
            ops.append(write_back())
            self._directory.note_writeback(victim, dirty_owner, keep_clean=False)
        clean_holders = [index for index, _ in holders if index != dirty_owner]
        if clean_holders:
            ops.append(invalidate(len(clean_holders)))
        for index, _ in holders:
            self._caches[index].evict(victim)
        self._directory.note_all_invalidated(victim)
        return True
