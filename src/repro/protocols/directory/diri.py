"""``DiriB`` and ``DiriNB``: limited-pointer directories (Section 6).

Both keep up to *i* cache pointers per block.  They differ in how they
handle the (rare) case of more than *i* simultaneous copies:

* ``DiriB`` sets a **broadcast bit** on pointer overflow; a later
  invalidation must then be broadcast (at a cost the paper studies as a
  parameter *b*).
* ``DiriNB`` **never broadcasts**: a read that would create an
  (i+1)-th copy first displaces one existing sharer (a pointer
  eviction), trading a slightly increased miss rate for full
  scalability over arbitrary networks.

``Dir1B`` — one pointer plus a broadcast bit — is the paper's featured
small configuration (its Section 6 model: ``0.0485 + 0.0006·b`` bus
cycles per reference).
"""

from __future__ import annotations

from repro.memory.cache import InfiniteCache
from repro.memory.directory import LimitedPointerDirectory, PointerEvictionPolicy
from repro.protocols.directory.multicopy import MultiCopyDirectoryProtocol


class DirIBProtocol(MultiCopyDirectoryProtocol):
    """Limited-pointer directory with a broadcast bit (``DiriB``)."""

    name = "dirib"

    def __init__(
        self,
        num_caches: int,
        num_pointers: int = 1,
        cache_factory=InfiniteCache,
        dir_capacity: int | None = None,
    ) -> None:
        directory = LimitedPointerDirectory(
            num_caches, num_pointers=num_pointers, broadcast_bit=True
        )
        super().__init__(
            num_caches, directory, cache_factory=cache_factory, dir_capacity=dir_capacity
        )
        self.num_pointers = num_pointers

    @property
    def scheme_label(self) -> str:
        """The paper's notation for this configuration."""
        return f"Dir{self.num_pointers}B"


class DirINBProtocol(MultiCopyDirectoryProtocol):
    """Limited-pointer directory with pointer eviction (``DiriNB``)."""

    name = "dirinb"

    def __init__(
        self,
        num_caches: int,
        num_pointers: int = 2,
        eviction_policy: PointerEvictionPolicy = PointerEvictionPolicy.FIFO,
        cache_factory=InfiniteCache,
        dir_capacity: int | None = None,
    ) -> None:
        directory = LimitedPointerDirectory(
            num_caches,
            num_pointers=num_pointers,
            broadcast_bit=False,
            eviction_policy=eviction_policy,
        )
        super().__init__(
            num_caches, directory, cache_factory=cache_factory, dir_capacity=dir_capacity
        )
        self.num_pointers = num_pointers
        # A block may be cached in at most i places (shadows the class
        # attribute; the invariant checker reads it per instance).
        self.max_copies = num_pointers

    @property
    def scheme_label(self) -> str:
        """The paper's notation for this configuration."""
        return f"Dir{self.num_pointers}NB"
