"""``DirnNB``: the Censier–Feautrier full-map directory (Sections 2, 6).

One presence bit per cache plus a dirty bit.  Because the directory
knows exactly which caches hold a block, invalidations are **sequential
point-to-point messages** instead of broadcasts — the property that
makes the scheme work over an arbitrary interconnection network.  The
paper shows the performance cost relative to broadcast (Dir0B) is tiny
because over 85% of invalidation situations involve at most one copy.

Tang's duplicate-tag organization holds the same information; pass
``organization="tang"`` to account its storage instead.
"""

from __future__ import annotations

from repro.memory.cache import InfiniteCache
from repro.memory.directory import FullMapDirectory, TangDirectory
from repro.protocols.directory.multicopy import MultiCopyDirectoryProtocol


class DirNNBProtocol(MultiCopyDirectoryProtocol):
    """Full-map directory with sequential invalidations."""

    name = "dirnnb"

    def __init__(
        self,
        num_caches: int,
        cache_factory=InfiniteCache,
        organization: str = "full-map",
        dir_capacity: int | None = None,
    ) -> None:
        if organization == "full-map":
            directory = FullMapDirectory(num_caches)
        elif organization == "tang":
            directory = TangDirectory(num_caches)
        else:
            raise ValueError(
                f"organization must be 'full-map' or 'tang', got {organization!r}"
            )
        super().__init__(
            num_caches, directory, cache_factory=cache_factory, dir_capacity=dir_capacity
        )
