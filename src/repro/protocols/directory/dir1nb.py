"""``Dir1NB``: one directory pointer, no broadcast (Section 3).

The most restrictive scheme the paper evaluates: a block may reside in
at most **one** cache at a time, so no inter-cache inconsistency can
ever arise.  The directory entry is a single pointer to the (possibly
absent) holding cache.  On any miss the directory forwards an
invalidation to the current holder — which writes the block back first
if dirty — and the block migrates to the requester.

Cost notes (paper Table 5): the directory lookup is *always* overlapped
with the memory access or write-back that follows, so it never costs
bus cycles; write hits are free because the holder is by construction
the only cache with a copy.
"""

from __future__ import annotations

from repro.memory.cache import InfiniteCache
from repro.memory.directory import LimitedPointerDirectory
from repro.memory.line import LineState
from repro.protocols.base import DirectoryProtocol
from repro.protocols.events import (
    RESULT_RD_HIT,
    RESULT_WH_BLK_DRTY,
    EventType,
    ProtocolResult,
    dir_check_overlapped,
    invalidate,
    mem_access,
    write_back,
)


class Dir1NBProtocol(DirectoryProtocol):
    """Single-pointer, no-broadcast directory protocol."""

    name = "dir1nb"
    max_copies = 1

    def __init__(
        self,
        num_caches: int,
        cache_factory=InfiniteCache,
        dir_capacity: int | None = None,
    ) -> None:
        directory = LimitedPointerDirectory(
            num_caches, num_pointers=1, broadcast_bit=False
        )
        super().__init__(
            num_caches, directory, cache_factory=cache_factory, dir_capacity=dir_capacity
        )

    def _holder_of(self, block: int) -> tuple[int, LineState] | None:
        """Locate the unique cache holding *block*, if any."""
        entry = self._directory.entry(block)
        if not entry.cached or not entry.sharers:
            return None
        holder = next(iter(entry.sharers))
        state = self._caches[holder].get(block)
        if state is None:
            return None
        return holder, state

    def _install(self, cache: int, block: int, state: LineState, ops: list) -> None:
        victim = self._caches[cache].put(block, state)
        if victim is not None:
            victim_block, victim_state = victim
            if victim_state is LineState.DIRTY:
                ops.append(write_back())
                self._directory.note_writeback(victim_block, cache, keep_clean=False)
            else:
                self._directory.note_invalidated(victim_block, cache)

    def _take_block(
        self, cache: int, block: int, first_ref: bool, install_state: LineState, ops: list
    ) -> tuple[EventType, int]:
        """Move *block* into *cache*, displacing any current holder.

        Returns the event classification of the miss and the number of
        directory entries recalled to make room for the block's entry.
        """
        recalls = self._ensure_directory_capacity(block, ops)
        first_event = (
            EventType.RM_FIRST_REF
            if install_state is LineState.CLEAN
            else EventType.WM_FIRST_REF
        )
        clean_event = (
            EventType.RM_BLK_CLN
            if install_state is LineState.CLEAN
            else EventType.WM_BLK_CLN
        )
        dirty_event = (
            EventType.RM_BLK_DRTY
            if install_state is LineState.CLEAN
            else EventType.WM_BLK_DRTY
        )

        if first_ref:
            event = first_event
        else:
            holder = self._holder_of(block)
            if holder is None:
                # Only reachable with finite caches, where the holder may
                # have silently evicted the block; memory is current.
                event = clean_event
                ops.extend([dir_check_overlapped(), mem_access()])
            else:
                holder_cache, holder_state = holder
                self._caches[holder_cache].evict(block)
                if holder_state is LineState.DIRTY:
                    event = dirty_event
                    # The holder writes back; the requester receives the
                    # data during the transfer (Section 4.3).
                    ops.extend([dir_check_overlapped(), invalidate(1), write_back()])
                    self._directory.note_writeback(block, holder_cache, keep_clean=False)
                else:
                    event = clean_event
                    ops.extend([dir_check_overlapped(), invalidate(1), mem_access()])
                    self._directory.note_invalidated(block, holder_cache)

        self._install(cache, block, install_state, ops)
        if install_state is LineState.DIRTY:
            self._directory.note_dirty_owner(block, cache)
        else:
            self._directory.note_clean_copy(block, cache)
        return event, recalls

    def on_read(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data read; see :meth:`CoherenceProtocol.on_read`."""
        self._check_cache_index(cache)
        if self._caches[cache].get(block) is not None:
            self._caches[cache].touch(block)
            return RESULT_RD_HIT
        ops: list = []
        event, recalls = self._take_block(cache, block, first_ref, LineState.CLEAN, ops)
        return ProtocolResult(event, tuple(ops), directory_recalls=recalls)

    def on_write(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data write; see :meth:`CoherenceProtocol.on_write`."""
        self._check_cache_index(cache)
        line = self._caches[cache].get(block)
        if line is not None:
            # The holder is the sole copy, so the write is purely local:
            # no directory transaction is needed (the holder tracks
            # dirtiness itself and answers flush requests later).
            self._caches[cache].touch(block)
            if line is LineState.DIRTY:
                return RESULT_WH_BLK_DRTY
            self._caches[cache].put(block, LineState.DIRTY)
            self._directory.note_dirty_owner(block, cache)
            return ProtocolResult(EventType.WH_BLK_CLN, clean_write_sharers=0)
        ops: list = []
        event, recalls = self._take_block(cache, block, first_ref, LineState.DIRTY, ops)
        return ProtocolResult(event, tuple(ops), directory_recalls=recalls)
