"""``Dir0B``: the Archibald–Baer two-bit broadcast directory (Section 3).

The directory stores two bits per memory block (not cached / clean in
exactly one cache / clean in an unknown number of caches / dirty in
exactly one cache) and **no pointers**, so invalidations use bus
broadcasts.  The *clean-in-exactly-one-cache* state spares the common
case: a cache writing a clean block that no one else holds needs only
the directory probe, not a broadcast.
"""

from __future__ import annotations

from repro.memory.cache import InfiniteCache
from repro.memory.directory import InvalidationPlan, TwoBitDirectory
from repro.protocols.directory.multicopy import MultiCopyDirectoryProtocol


class Dir0BProtocol(MultiCopyDirectoryProtocol):
    """Two-bit directory with broadcast invalidates."""

    name = "dir0b"

    def __init__(
        self,
        num_caches: int,
        cache_factory=InfiniteCache,
        dir_capacity: int | None = None,
    ) -> None:
        super().__init__(
            num_caches,
            TwoBitDirectory(num_caches),
            cache_factory=cache_factory,
            dir_capacity=dir_capacity,
        )

    def _plan_for_write_hit(self, block: int, cache: int) -> InvalidationPlan:
        # The two-bit directory's special case: in CLEAN_ONE the writer
        # is necessarily the single holder, so no broadcast is needed.
        directory: TwoBitDirectory = self._directory
        return directory.plan_write_hit(block, cache)
