"""Directory-based coherence protocols (the paper's Dir_iX family)."""

from repro.protocols.directory.dir1nb import Dir1NBProtocol
from repro.protocols.directory.multicopy import MultiCopyDirectoryProtocol
from repro.protocols.directory.dir0b import Dir0BProtocol
from repro.protocols.directory.dirnnb import DirNNBProtocol
from repro.protocols.directory.diri import DirIBProtocol, DirINBProtocol
from repro.protocols.directory.coarse import CoarseVectorProtocol
from repro.protocols.directory.yenfu import YenFuProtocol

__all__ = [
    "Dir1NBProtocol",
    "MultiCopyDirectoryProtocol",
    "Dir0BProtocol",
    "DirNNBProtocol",
    "DirIBProtocol",
    "DirINBProtocol",
    "CoarseVectorProtocol",
    "YenFuProtocol",
]
