"""Shared machinery for multi-copy directory protocols.

``Dir0B``, ``DirnNB``, ``DiriB``, ``DiriNB``, and the coarse-vector
scheme all use the same **data state-change model** — a block may be
clean in many caches but dirty in exactly one (the paper stresses in
Section 5 that this makes their event frequencies identical).  They
differ only in how the directory locates copies and therefore in what
bus operations an invalidation costs.  This module implements the state
machine once; subclasses supply the directory organization and the
plan-to-bus-ops translation.
"""

from __future__ import annotations

from repro.memory.cache import InfiniteCache
from repro.memory.directory import DirectoryOrganization, InvalidationPlan
from repro.memory.line import LineState
from repro.protocols.base import DirectoryProtocol
from repro.protocols.events import (
    RESULT_RD_HIT,
    RESULT_WH_BLK_DRTY,
    BusOp,
    EventType,
    ProtocolResult,
    broadcast_invalidate,
    dir_check,
    dir_check_overlapped,
    invalidate,
    mem_access,
    write_back,
)


class MultiCopyDirectoryProtocol(DirectoryProtocol):
    """Base for directory protocols with the multiple-clean/single-dirty model."""

    max_copies = None

    def __init__(
        self,
        num_caches: int,
        directory: DirectoryOrganization,
        cache_factory=InfiniteCache,
        dir_capacity: int | None = None,
    ) -> None:
        super().__init__(
            num_caches, directory, cache_factory=cache_factory, dir_capacity=dir_capacity
        )

    # ------------------------------------------------------------------
    # Hooks subclasses may refine
    # ------------------------------------------------------------------

    def _plan_for_write_hit(self, block: int, cache: int) -> InvalidationPlan:
        """Invalidation plan for a write *hit* on a clean block."""
        return self._directory.plan_invalidation(block, cache)

    def _ops_from_plan(self, plan: InvalidationPlan) -> tuple[list[BusOp], int]:
        """Translate an invalidation plan into bus ops.

        Returns ``(ops, wasted_message_count)``.
        """
        if plan.broadcast:
            return [broadcast_invalidate()], 0
        if plan.message_count:
            return [invalidate(plan.message_count)], len(plan.wasted_targets)
        return [], 0

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _dirty_owner(self, block: int) -> int | None:
        """Index of the cache holding *block* dirty, if any (ground truth)."""
        for index, cache in enumerate(self._caches):
            if cache.get(block) is LineState.DIRTY:
                return index
        return None

    def _other_holders(self, block: int, cache: int) -> list[int]:
        """Caches other than *cache* currently holding *block*."""
        return [
            index
            for index, other in enumerate(self._caches)
            if index != cache and other.get(block) is not None
        ]

    def _handle_victim(self, cache: int, victim, ops: list) -> None:
        """Process a finite-cache eviction victim returned by ``put``."""
        if victim is None:
            return
        victim_block, victim_state = victim
        if victim_state is LineState.DIRTY:
            ops.append(write_back())
            self._directory.note_writeback(victim_block, cache, keep_clean=False)
        else:
            self._directory.note_invalidated(victim_block, cache)

    def _ensure_pointer_capacity(self, block: int, cache: int, ops: list) -> int:
        """Displace sharers until the directory can track *cache* (DiriNB).

        Returns the number of pointer-eviction invalidations performed.
        """
        evictions = 0
        while not self._directory.check_capacity(block, cache):
            victim = self._directory.overflow_victim(block, cache)
            self._caches[victim].evict(block)
            self._directory.note_invalidated(block, victim)
            ops.append(invalidate(1))
            evictions += 1
        return evictions

    def _grant_clean(self, cache: int, block: int, ops: list) -> int:
        """Install a clean copy at *cache*, enforcing pointer capacity."""
        evictions = self._ensure_pointer_capacity(block, cache, ops)
        victim = self._caches[cache].put(block, LineState.CLEAN)
        self._handle_victim(cache, victim, ops)
        self._directory.note_clean_copy(block, cache)
        return evictions

    def _grant_dirty(self, cache: int, block: int, ops: list) -> None:
        """Install a dirty (exclusive) copy at *cache*."""
        victim = self._caches[cache].put(block, LineState.DIRTY)
        self._handle_victim(cache, victim, ops)
        self._directory.note_dirty_owner(block, cache)

    # ------------------------------------------------------------------
    # The state machine
    # ------------------------------------------------------------------

    def on_read(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data read; see :meth:`CoherenceProtocol.on_read`."""
        self._check_cache_index(cache)
        if self._caches[cache].get(block) is not None:
            self._caches[cache].touch(block)
            return RESULT_RD_HIT

        ops: list = []
        recalls = self._ensure_directory_capacity(block, ops)
        if first_ref:
            event = EventType.RM_FIRST_REF
        else:
            owner = self._dirty_owner(block)
            if owner is not None:
                event = EventType.RM_BLK_DRTY
                # The owner flushes the dirty block to memory; the
                # requester receives the data during the transfer and
                # the owner retains a clean copy (Censier & Feautrier).
                ops.extend([dir_check_overlapped(), write_back()])
                self._caches[owner].put(block, LineState.CLEAN)
                self._directory.note_writeback(block, owner, keep_clean=True)
            else:
                event = EventType.RM_BLK_CLN
                ops.extend([dir_check_overlapped(), mem_access()])
        evictions = self._grant_clean(cache, block, ops)
        return ProtocolResult(
            event, tuple(ops), pointer_evictions=evictions, directory_recalls=recalls
        )

    def on_write(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data write; see :meth:`CoherenceProtocol.on_write`."""
        self._check_cache_index(cache)
        line = self._caches[cache].get(block)

        if line is LineState.DIRTY:
            self._caches[cache].touch(block)
            return RESULT_WH_BLK_DRTY

        if line is LineState.CLEAN:
            # Write hit on a clean block: probe the directory, then
            # invalidate every other copy.
            self._touch_directory(block)
            others = self._other_holders(block, cache)
            plan = self._plan_for_write_hit(block, cache)
            inval_ops, wasted = self._ops_from_plan(plan)
            ops = [dir_check()] + inval_ops
            for other in others:
                self._caches[other].evict(block)
            self._directory.note_all_invalidated(block, keep=cache)
            self._caches[cache].put(block, LineState.DIRTY)
            self._directory.note_dirty_owner(block, cache)
            return ProtocolResult(
                EventType.WH_BLK_CLN,
                tuple(ops),
                clean_write_sharers=len(others),
                wasted_invalidations=wasted,
            )

        # Write miss.
        ops = []
        recalls = self._ensure_directory_capacity(block, ops)
        if first_ref:
            self._grant_dirty(cache, block, ops)
            return ProtocolResult(
                EventType.WM_FIRST_REF, tuple(ops), directory_recalls=recalls
            )

        owner = self._dirty_owner(block)
        if owner is not None:
            event = EventType.WM_BLK_DRTY
            plan = self._directory.plan_invalidation(block, cache)
            inval_ops, wasted = self._ops_from_plan(plan)
            # The owner flushes the block (the requester receives the
            # data during the write-back) and its copy is invalidated.
            ops.extend([dir_check_overlapped()])
            ops.extend(inval_ops)
            ops.append(write_back())
            self._caches[owner].evict(block)
            self._directory.note_writeback(block, owner, keep_clean=False)
            clean_write_sharers = None
        else:
            event = EventType.WM_BLK_CLN
            others = self._other_holders(block, cache)
            plan = self._directory.plan_invalidation(block, cache)
            inval_ops, wasted = self._ops_from_plan(plan)
            ops.extend([dir_check_overlapped(), mem_access()])
            ops.extend(inval_ops)
            for other in others:
                self._caches[other].evict(block)
            self._directory.note_all_invalidated(block)
            clean_write_sharers = len(others)
        self._grant_dirty(cache, block, ops)
        return ProtocolResult(
            event,
            tuple(ops),
            clean_write_sharers=clean_write_sharers,
            wasted_invalidations=wasted,
            directory_recalls=recalls,
        )
