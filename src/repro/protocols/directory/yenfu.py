"""Yen & Fu's single-bit refinement of the full-map directory (Section 2).

The central directory is Censier–Feautrier's, unchanged; each *cache*
block additionally carries a **single bit** that is set iff this cache
is the only one in the system holding the block.  A write hit on a
clean block whose single bit is set can proceed without completing a
central directory access.  The price is "extra bus bandwidth consumed
to keep the single bits updated in all the caches": when a block held
by exactly one cache gains a second holder through a memory-supplied
miss, a bus message clears the first holder's single bit.  (Transitions
that already involve the other cache — a dirty flush, an invalidation —
piggyback the bit update on the existing transaction at no extra cost.)

The paper's verdict — the scheme "saves central directory accesses, but
does not reduce the number of bus accesses versus the Censier and
Feautrier protocol" — falls straight out of this model: every saved
``DIR_CHECK`` on a single-holder write hit is bought with roughly one
``SINGLE_BIT_UPDATE`` when the block was first shared.
"""

from __future__ import annotations

from repro.memory.cache import InfiniteCache
from repro.memory.line import LineState
from repro.protocols.directory.dirnnb import DirNNBProtocol
from repro.protocols.events import EventType, ProtocolResult, single_bit_update


class YenFuProtocol(DirNNBProtocol):
    """Censier–Feautrier directory plus per-cache single bits."""

    name = "yenfu"

    def __init__(
        self,
        num_caches: int,
        cache_factory=InfiniteCache,
        dir_capacity: int | None = None,
    ) -> None:
        super().__init__(
            num_caches, cache_factory=cache_factory, dir_capacity=dir_capacity
        )
        # (cache, block) pairs whose single bit is currently set.
        self._single_bits: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Single-bit bookkeeping
    # ------------------------------------------------------------------

    def single_bit(self, cache: int, block: int) -> bool:
        """True if *cache*'s copy of *block* carries a set single bit."""
        return (cache, block) in self._single_bits

    def _refresh_bits(self, block: int) -> None:
        """Reconcile single bits with the holder set after a transaction.

        Clearing the bit of a previously-single holder that did not
        participate in the transaction costs one bus message; every
        other adjustment rides on the transaction itself.
        """
        holders = {
            index
            for index in range(self._num_caches)
            if self._caches[index].get(block) is not None
        }
        if len(holders) == 1:
            only = next(iter(holders))
            self._single_bits.add((only, block))
            stale = [
                key for key in self._single_bits
                if key[1] == block and key[0] != only
            ]
        else:
            stale = [key for key in self._single_bits if key[1] == block]
        for key in stale:
            self._single_bits.discard(key)

    def _charge_bit_clear_if_needed(
        self, block: int, previously_single: int | None, result: ProtocolResult
    ) -> ProtocolResult:
        """Add the bus message that clears a bystander's single bit."""
        if previously_single is None:
            return result
        holders = self.holders(block)
        if previously_single not in holders or len(holders) < 2:
            # The old holder lost its copy (invalidated: rode along) or
            # is still alone: no clearing message needed.
            return result
        if result.event is EventType.RM_BLK_DRTY:
            # The flush transaction already involved that cache.
            return result
        return ProtocolResult(
            result.event,
            result.ops + (single_bit_update(),),
            clean_write_sharers=result.clean_write_sharers,
            wasted_invalidations=result.wasted_invalidations,
            pointer_evictions=result.pointer_evictions,
            directory_recalls=result.directory_recalls,
        )

    def _sole_holder(self, block: int) -> int | None:
        holders = self.holders(block)
        if len(holders) == 1:
            return next(iter(holders))
        return None

    # ------------------------------------------------------------------

    def on_read(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data read; see :meth:`CoherenceProtocol.on_read`."""
        previously_single = self._sole_holder(block)
        result = super().on_read(cache, block, first_ref)
        result = self._charge_bit_clear_if_needed(block, previously_single, result)
        self._refresh_bits(block)
        return result

    def on_write(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data write; see :meth:`CoherenceProtocol.on_write`."""
        line = self._caches[cache].get(block)
        if line is LineState.CLEAN and self.single_bit(cache, block):
            # The whole point of the scheme: a set single bit means no
            # other copy exists, so the write proceeds with no central
            # directory access on the critical path.
            self._caches[cache].put(block, LineState.DIRTY)
            self._directory.note_dirty_owner(block, cache)
            result = ProtocolResult(
                EventType.WH_BLK_CLN, (), clean_write_sharers=0
            )
            self._refresh_bits(block)
            return result
        previously_single = self._sole_holder(block)
        result = super().on_write(cache, block, first_ref)
        if previously_single is not None and previously_single == cache:
            previously_single = None  # the writer itself: no bystander
        result = self._charge_bit_clear_if_needed(block, previously_single, result)
        self._refresh_bits(block)
        return result

    def directory_bits_per_block(self) -> int:
        """Full map storage; the single bits live in the caches."""
        return self._directory.bits_per_block()
