"""Coarse-vector directory protocol (the Section 6 ternary coding).

The directory stores a ``2·log2(n)``-bit ternary code denoting a
*superset* of the sharers.  Invalidations are sent sequentially to
every denoted cache; messages to caches that hold no copy are counted
as **wasted invalidations** so the scalability analysis can quantify
the precision/storage trade-off against the full map.
"""

from __future__ import annotations

from repro.memory.cache import InfiniteCache
from repro.memory.directory import CoarseVectorDirectory
from repro.protocols.directory.multicopy import MultiCopyDirectoryProtocol


class CoarseVectorProtocol(MultiCopyDirectoryProtocol):
    """Sequential-invalidation protocol over a coarse-vector directory."""

    name = "coarse-vector"

    def __init__(
        self,
        num_caches: int,
        cache_factory=InfiniteCache,
        dir_capacity: int | None = None,
    ) -> None:
        super().__init__(
            num_caches,
            CoarseVectorDirectory(num_caches),
            cache_factory=cache_factory,
            dir_capacity=dir_capacity,
        )
