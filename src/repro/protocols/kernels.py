"""Table-driven columnar kernels for the paper's hot protocols.

The generic columnar fast path (``Simulator._run_columnar``) still pays
per-reference *method dispatch*: every data reference walks
``on_read``/``on_write`` through cache-model calls, directory
bookkeeping, and ``ProtocolResult`` construction.  For the four
protocols that dominate sweeps — ``dir0b``, ``dir1nb``, ``wti``, and
``dragon`` — the reachable state space under infinite caches is tiny,
so each protocol's inner loop collapses to a handful of dict lookups
over a **compact state encoding** plus a table of precomputed, shared
:class:`ProtocolResult` instances keyed on (state, op, holder
relation).

Each kernel is split into three stages so chunk-streamed simulation
(:mod:`repro.store`) can amortize the expensive ends:

* an **importer** reads the protocol's live object state into the
  compact encoding, cross-checking every derived invariant;
* a **loop** runs the hot per-reference state machine over one
  columnar chunk, accumulating identity-batched outcomes;
* an **exporter** writes the compact state back into the protocol's
  caches and directory, exactly as the object model would have left
  them.

:func:`kernel_run` composes all three for a single in-memory trace;
:func:`open_kernel_session` returns a :class:`KernelSession` that
imports once, loops over any number of chunks with the compact
(interned sharer-bitmask) state resident in between, and exports once
at :meth:`KernelSession.finish` — so a multi-gigabyte chunked trace
never materializes per-chunk object-model state.

Bit-identity contract
---------------------

A kernel is an alternative *evaluator*, not an alternative *model*:

* it engages only for exact protocol/cache/directory types (any
  wrapper — a conformance oracle, a mutation-testing saboteur, a
  subclassed cache — fails the ``type() is`` gates and falls back to
  the generic path, so differential and chaos suites still exercise
  the real object model);
* before running, the importer cross-checks the live state; any
  inconsistency aborts the kernel (returning None with protocol state
  untouched) and the generic path runs instead;
* after running, the exporter leaves the protocol's caches and
  directory exactly as the object model would have — segmented
  (checkpoint-windowed) simulation keeps feeding the same protocol
  instance through import/export round trips;
* event classification, bus-op tuples, ``clean_write_sharers``
  populations, and the identity-batched accumulation replicate the
  generic path decision for decision, so results are bit-identical
  (``tests/test_kernel_differential.py`` holds this per protocol, and
  the engine-parity / ``repro verify`` suites hold it end to end).

State encodings (all under infinite caches):

* ``dir0b`` — per block: a holder bitmask plus an optional dirty
  owner.  The two-bit directory state is a pure function of these
  (popcount 0/1/many, owner present or not).
* ``dir1nb`` — per block: ``(holder << 1) | dirty`` — at most one
  cache ever holds a block.
* ``wti`` — per block: a holder bitmask (write-through caches are
  always clean).
* ``dragon`` — per block: a holder bitmask plus an optional owner;
  the four Dragon line states are derived (sole holder: VE, or D when
  owning; shared: SC with the owner SD).

Finite-capacity kernels
-----------------------

The same four protocols also have **capacity-aware** kernels that
engage when every cache is exactly a :class:`FiniteCache` of one shared
geometry (and no directory-entry bound is set — recalls stay on the
generic path).  They keep, per cache, compact LRU stacks over the
integer encodings: one plain dict per cache set whose insertion order
is the set's LRU order (oldest first), exactly mirroring the
``OrderedDict`` sets of :class:`FiniteCache`.  Replacement picks
``next(iter(set_dict))``; a touch is delete-and-reinsert.  Because a
reference installs at most one line, a replacement adds at most one
trailing bus op to an infinite-model outcome — memoized as the
``_with_wb`` variant so identity batching still works.
Two encodings change shape under eviction pressure:

* ``dir0b`` keeps an explicit two-bit directory state per block
  (silent evictions make ``CLEAN_MANY`` sticky, so it is no longer a
  pure function of the holder mask);
* ``dragon`` stores each line's state int explicitly (a holder left
  alone by evictions stays ``SHARED_*`` — sole-holder states are not
  derivable).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.memory.cache import FiniteCache, InfiniteCache
from repro.memory.directory import (
    LimitedPointerDirectory,
    TwoBitDirectory,
    TwoBitState,
    _PointerEntry,
)
from repro.memory.line import DragonLineState, LineState
from repro.protocols.directory.dir0b import Dir0BProtocol
from repro.protocols.directory.dir1nb import Dir1NBProtocol
from repro.protocols.events import (
    RESULT_RD_HIT,
    RESULT_WH_BLK_DRTY,
    RESULT_WH_DISTRIB,
    RESULT_WH_LOCAL,
    EventType,
    ProtocolResult,
    broadcast_invalidate,
    cache_access,
    dir_check,
    dir_check_overlapped,
    invalidate,
    mem_access,
    write_back,
    write_word,
)
from repro.protocols.snoopy.dragon import DragonProtocol
from repro.protocols.snoopy.wti import WTIProtocol
from repro.trace.columnar import TYPE_READ, ColumnarTrace

# ----------------------------------------------------------------------
# Precomputed outcome tables.  Every entry matches, field for field, the
# ProtocolResult the object model constructs for the same transition.
# ----------------------------------------------------------------------

_RM_FIRST = ProtocolResult(EventType.RM_FIRST_REF)
_WM_FIRST = ProtocolResult(EventType.WM_FIRST_REF)

# dir0b (two-bit broadcast directory, multicopy state machine)
_D0_RM_DRTY = ProtocolResult(
    EventType.RM_BLK_DRTY, (dir_check_overlapped(), write_back())
)
_D0_RM_CLN = ProtocolResult(
    EventType.RM_BLK_CLN, (dir_check_overlapped(), mem_access())
)
_D0_WM_DRTY = ProtocolResult(
    EventType.WM_BLK_DRTY,
    (dir_check_overlapped(), broadcast_invalidate(), write_back()),
)
_D0_WM_ALONE = ProtocolResult(
    EventType.WM_BLK_CLN,
    (dir_check_overlapped(), mem_access()),
    clean_write_sharers=0,
)
_D0_WH_SOLE = ProtocolResult(
    EventType.WH_BLK_CLN, (dir_check(),), clean_write_sharers=0
)
#: Write hit on a clean-shared block, keyed by the other-holder count.
_D0_WH_CLN: dict[int, ProtocolResult] = {}
#: Write miss on a clean-shared block, keyed by the holder count.
_D0_WM_CLN: dict[int, ProtocolResult] = {}

# dir1nb (single pointer, no broadcast: at most one copy machine-wide)
_D1_WH_CLN = ProtocolResult(EventType.WH_BLK_CLN, clean_write_sharers=0)
_D1_RM_NOHOLDER = ProtocolResult(
    EventType.RM_BLK_CLN, (dir_check_overlapped(), mem_access())
)
_D1_RM_DRTY = ProtocolResult(
    EventType.RM_BLK_DRTY, (dir_check_overlapped(), invalidate(1), write_back())
)
_D1_RM_CLN = ProtocolResult(
    EventType.RM_BLK_CLN, (dir_check_overlapped(), invalidate(1), mem_access())
)
_D1_WM_NOHOLDER = ProtocolResult(
    EventType.WM_BLK_CLN, (dir_check_overlapped(), mem_access())
)
_D1_WM_DRTY = ProtocolResult(
    EventType.WM_BLK_DRTY, (dir_check_overlapped(), invalidate(1), write_back())
)
_D1_WM_CLN = ProtocolResult(
    EventType.WM_BLK_CLN, (dir_check_overlapped(), invalidate(1), mem_access())
)

# wti (write-through with invalidate; every write rides one bus word)
_WT_RM_CLN = ProtocolResult(EventType.RM_BLK_CLN, (mem_access(),))
_WT_WM_FIRST = ProtocolResult(EventType.WM_FIRST_REF, (write_word(),))
#: Write hit, keyed by the other-holder count snooped off the bus.
_WT_WH: dict[int, ProtocolResult] = {}
#: Allocating write miss, keyed by the other-holder count.
_WT_WM: dict[int, ProtocolResult] = {}

# dragon (write-update; misses and updates, never invalidations)
_DG_RM_DRTY = ProtocolResult(EventType.RM_BLK_DRTY, (cache_access(),))
_DG_RM_CLN = ProtocolResult(EventType.RM_BLK_CLN, (mem_access(),))
_DG_WM_DRTY = ProtocolResult(
    EventType.WM_BLK_DRTY, (cache_access(), write_word())
)
_DG_WM_CLN = ProtocolResult(EventType.WM_BLK_CLN, (mem_access(), write_word()))
_DG_WM_ALONE = ProtocolResult(EventType.WM_BLK_CLN, (mem_access(),))


def _d0_wh_cln(n_others: int) -> ProtocolResult:
    outcome = _D0_WH_CLN.get(n_others)
    if outcome is None:
        outcome = ProtocolResult(
            EventType.WH_BLK_CLN,
            (dir_check(), broadcast_invalidate()),
            clean_write_sharers=n_others,
        )
        _D0_WH_CLN[n_others] = outcome
    return outcome


def _d0_wm_cln(n_holders: int) -> ProtocolResult:
    outcome = _D0_WM_CLN.get(n_holders)
    if outcome is None:
        outcome = ProtocolResult(
            EventType.WM_BLK_CLN,
            (dir_check_overlapped(), mem_access(), broadcast_invalidate()),
            clean_write_sharers=n_holders,
        )
        _D0_WM_CLN[n_holders] = outcome
    return outcome


def _wt_wh(n_others: int) -> ProtocolResult:
    outcome = _WT_WH.get(n_others)
    if outcome is None:
        outcome = ProtocolResult(
            EventType.WH_BLK_CLN, (write_word(),), clean_write_sharers=n_others
        )
        _WT_WH[n_others] = outcome
    return outcome


def _wt_wm(n_others: int) -> ProtocolResult:
    outcome = _WT_WM.get(n_others)
    if outcome is None:
        outcome = ProtocolResult(
            EventType.WM_BLK_CLN,
            (write_word(), mem_access()),
            clean_write_sharers=n_others,
        )
        _WT_WM[n_others] = outcome
    return outcome


# ----------------------------------------------------------------------
# Shared scaffolding
# ----------------------------------------------------------------------


def _infinite_lines(protocol: Any) -> list[dict] | None:
    """Each cache's line dict, or None unless every cache is the exact
    :class:`InfiniteCache` (finite caches change reachable states)."""
    lines = []
    for cache in protocol._caches:
        if type(cache) is not InfiniteCache:
            return None
        lines.append(cache._lines)
    return lines


def _too_many_sharers(limit: int, sharer: int) -> ConfigurationError:
    return ConfigurationError(
        f"trace contains more than num_caches={limit} "
        f"distinct sharers (sharer id {sharer})"
    )


def _flush_batches(
    result: Any,
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
    instr_count: int,
) -> None:
    """Flush the identity-run batches exactly as ``_run_columnar`` does."""
    if previous is not None:
        entry = pending.get(id(previous))
        if entry is None:
            pending[id(previous)] = [previous, run_length]
        else:
            entry[1] += run_length
    record_batch = result.record_batch
    for outcome, count in pending.values():
        record_batch(outcome, count)
    result.record_instructions(instr_count)


# ----------------------------------------------------------------------
# dir0b
# ----------------------------------------------------------------------


def _import_masked(
    lines: list[dict], seen: set
) -> tuple[dict[int, int], dict[int, int]] | None:
    """Collect (holder bitmask, dirty owner) per block from cache lines.

    Returns None on any state outside the multicopy model: an unknown
    line state, two dirty owners, a dirty owner sharing with others, or
    a held block the context has never seen (which would let a
    ``first_ref`` land on a held block — unreachable in the object
    model, so the kernel refuses to guess).
    """
    mask: dict[int, int] = {}
    owner: dict[int, int] = {}
    clean = LineState.CLEAN
    dirty = LineState.DIRTY
    for index, cache_lines in enumerate(lines):
        bit = 1 << index
        for block, state in cache_lines.items():
            mask[block] = mask.get(block, 0) | bit
            if state is dirty:
                if block in owner:
                    return None
                owner[block] = index
            elif state is not clean:
                return None
    for block, who in owner.items():
        if mask[block] != 1 << who:
            return None
    if not seen >= mask.keys():
        return None
    return mask, owner


def _import_dir0b(protocol: Any, context: Any) -> dict[str, Any] | None:
    directory = protocol._directory
    if type(directory) is not TwoBitDirectory:
        return None
    lines = _infinite_lines(protocol)
    if lines is None:
        return None
    imported = _import_masked(lines, context.seen_blocks)
    if imported is None:
        return None
    mask, owner = imported

    # The two-bit state must be exactly the function of (mask, owner)
    # the object model maintains; otherwise transitions would diverge.
    states = directory._states
    not_cached = TwoBitState.NOT_CACHED
    for block in mask.keys() | states.keys():
        held = mask.get(block, 0)
        if block in owner:
            expected = TwoBitState.DIRTY_ONE
        elif held == 0:
            expected = not_cached
        elif held & (held - 1) == 0:
            expected = TwoBitState.CLEAN_ONE
        else:
            expected = TwoBitState.CLEAN_MANY
        if states.get(block, not_cached) is not expected:
            return None
    return {"mask": mask, "owner": owner}


def _loop_dir0b(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    context: Any,
    state: dict[str, Any],
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
) -> tuple[ProtocolResult | None, int, int]:
    mask = state["mask"]
    owner = state["owner"]
    instr_count, type_codes, sharer_col, addresses = trace.data_view(
        simulator.sharer_key
    )
    sharer_index = context.sharer_index
    sharer_lookup = sharer_index.get
    seen = context.seen_blocks
    seen_add = seen.add
    shift = simulator.block_mapper.offset_bits
    limit = protocol.num_caches
    mask_get = mask.get
    wh_cln = _D0_WH_CLN.get
    wm_cln = _D0_WM_CLN.get
    read = TYPE_READ
    pending_get = pending.get

    for code, sharer, address in zip(type_codes, sharer_col, addresses):
        cache = sharer_lookup(sharer)
        if cache is None:
            cache = len(sharer_index)
            if cache >= limit:
                raise _too_many_sharers(limit, sharer)
            sharer_index[sharer] = cache
        block = address >> shift
        if block in seen:
            first = False
        else:
            first = True
            seen_add(block)
        bit = 1 << cache
        held = mask_get(block, 0)
        if code == read:
            if held & bit:
                outcome = RESULT_RD_HIT
            elif first:
                outcome = _RM_FIRST
                mask[block] = bit
            else:
                own = owner.pop(block, None)
                # A dirty owner writes back and keeps a clean copy.
                outcome = _D0_RM_CLN if own is None else _D0_RM_DRTY
                mask[block] = held | bit
        else:
            if held & bit:
                if block in owner:
                    # Sole-holder invariant: the owner is this cache.
                    outcome = RESULT_WH_BLK_DRTY
                else:
                    n_others = (held & ~bit).bit_count()
                    if n_others == 0:
                        outcome = _D0_WH_SOLE
                    else:
                        outcome = wh_cln(n_others) or _d0_wh_cln(n_others)
                    mask[block] = bit
                    owner[block] = cache
            else:
                if first:
                    outcome = _WM_FIRST
                elif block in owner:
                    del owner[block]
                    outcome = _D0_WM_DRTY
                elif held:
                    n_holders = held.bit_count()
                    outcome = wm_cln(n_holders) or _d0_wm_cln(n_holders)
                else:
                    outcome = _D0_WM_ALONE
                mask[block] = bit
                owner[block] = cache
        if outcome is previous:
            run_length += 1
        elif previous is None:
            previous = outcome
            run_length = 1
        else:
            entry = pending_get(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
            previous = outcome
            run_length = 1
    return previous, run_length, instr_count


def _export_dir0b(protocol: Any, state: dict[str, Any]) -> None:
    # Export: rebuild each cache's lines and the directory states from
    # the compact encoding (the exact inverse of the import mapping).
    mask = state["mask"]
    owner = state["owner"]
    new_lines: list[dict] = [{} for _ in protocol._caches]
    new_states: dict[int, TwoBitState] = {}
    clean = LineState.CLEAN
    for block, held in mask.items():
        own = owner.get(block)
        if own is not None:
            new_lines[own][block] = LineState.DIRTY
            new_states[block] = TwoBitState.DIRTY_ONE
        else:
            count = 0
            remaining = held
            while remaining:
                low = remaining & -remaining
                new_lines[low.bit_length() - 1][block] = clean
                remaining ^= low
                count += 1
            new_states[block] = (
                TwoBitState.CLEAN_ONE if count == 1 else TwoBitState.CLEAN_MANY
            )
    for cache, cache_lines in zip(protocol._caches, new_lines):
        cache._lines = cache_lines
    protocol._directory._states = new_states


# ----------------------------------------------------------------------
# dir1nb
# ----------------------------------------------------------------------


def _import_dir1nb(protocol: Any, context: Any) -> dict[str, Any] | None:
    directory = protocol._directory
    if (
        type(directory) is not LimitedPointerDirectory
        or directory.num_pointers != 1
        or directory.broadcast_bit
    ):
        return None
    lines = _infinite_lines(protocol)
    if lines is None:
        return None

    # Per block: (holder << 1) | dirty — the single-copy invariant.
    holders: dict[int, int] = {}
    for index, cache_lines in enumerate(lines):
        for block, state in cache_lines.items():
            if block in holders:
                return None  # two copies: outside the dir1nb model
            if state is LineState.DIRTY:
                holders[block] = (index << 1) | 1
            elif state is LineState.CLEAN:
                holders[block] = index << 1
            else:
                return None
    if not context.seen_blocks >= holders.keys():
        return None
    entries = directory._entries
    for block, stored in entries.items():
        if stored.broadcast:
            return None
        encoded = holders.get(block)
        if encoded is None:
            if stored.pointers or stored.dirty:
                return None
        elif stored.pointers != [encoded >> 1] or stored.dirty != bool(encoded & 1):
            return None
    for block in holders:
        if block not in entries:
            return None
    return {"holders": holders}


def _loop_dir1nb(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    context: Any,
    state: dict[str, Any],
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
) -> tuple[ProtocolResult | None, int, int]:
    holders = state["holders"]
    instr_count, type_codes, sharer_col, addresses = trace.data_view(
        simulator.sharer_key
    )
    sharer_index = context.sharer_index
    sharer_lookup = sharer_index.get
    seen = context.seen_blocks
    seen_add = seen.add
    shift = simulator.block_mapper.offset_bits
    limit = protocol.num_caches
    holders_get = holders.get
    read = TYPE_READ
    pending_get = pending.get

    for code, sharer, address in zip(type_codes, sharer_col, addresses):
        cache = sharer_lookup(sharer)
        if cache is None:
            cache = len(sharer_index)
            if cache >= limit:
                raise _too_many_sharers(limit, sharer)
            sharer_index[sharer] = cache
        block = address >> shift
        if block in seen:
            first = False
        else:
            first = True
            seen_add(block)
        encoded = holders_get(block)
        if code == read:
            if encoded is not None and encoded >> 1 == cache:
                outcome = RESULT_RD_HIT
            else:
                if first:
                    outcome = _RM_FIRST
                elif encoded is None:
                    outcome = _D1_RM_NOHOLDER
                elif encoded & 1:
                    outcome = _D1_RM_DRTY
                else:
                    outcome = _D1_RM_CLN
                holders[block] = cache << 1
        else:
            if encoded is not None and encoded >> 1 == cache:
                if encoded & 1:
                    outcome = RESULT_WH_BLK_DRTY
                else:
                    outcome = _D1_WH_CLN
                    holders[block] = encoded | 1
            else:
                if first:
                    outcome = _WM_FIRST
                elif encoded is None:
                    outcome = _D1_WM_NOHOLDER
                elif encoded & 1:
                    outcome = _D1_WM_DRTY
                else:
                    outcome = _D1_WM_CLN
                holders[block] = (cache << 1) | 1
        if outcome is previous:
            run_length += 1
        elif previous is None:
            previous = outcome
            run_length = 1
        else:
            entry = pending_get(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
            previous = outcome
            run_length = 1
    return previous, run_length, instr_count


def _export_dir1nb(protocol: Any, state: dict[str, Any]) -> None:
    holders = state["holders"]
    new_lines: list[dict] = [{} for _ in protocol._caches]
    new_entries: dict[int, _PointerEntry] = {}
    for block, encoded in holders.items():
        holder, dirty = encoded >> 1, bool(encoded & 1)
        new_lines[holder][block] = LineState.DIRTY if dirty else LineState.CLEAN
        new_entries[block] = _PointerEntry(dirty=dirty, pointers=[holder])
    for cache, cache_lines in zip(protocol._caches, new_lines):
        cache._lines = cache_lines
    protocol._directory._entries = new_entries


# ----------------------------------------------------------------------
# wti
# ----------------------------------------------------------------------


def _import_wti(protocol: Any, context: Any) -> dict[str, Any] | None:
    lines = _infinite_lines(protocol)
    if lines is None:
        return None
    mask: dict[int, int] = {}
    clean = LineState.CLEAN
    for index, cache_lines in enumerate(lines):
        bit = 1 << index
        for block, state in cache_lines.items():
            if state is not clean:
                return None  # write-through lines are never dirty
            mask[block] = mask.get(block, 0) | bit
    if not context.seen_blocks >= mask.keys():
        return None
    return {"mask": mask}


def _loop_wti(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    context: Any,
    state: dict[str, Any],
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
) -> tuple[ProtocolResult | None, int, int]:
    mask = state["mask"]
    instr_count, type_codes, sharer_col, addresses = trace.data_view(
        simulator.sharer_key
    )
    sharer_index = context.sharer_index
    sharer_lookup = sharer_index.get
    seen = context.seen_blocks
    seen_add = seen.add
    shift = simulator.block_mapper.offset_bits
    limit = protocol.num_caches
    mask_get = mask.get
    wt_wh = _WT_WH.get
    wt_wm = _WT_WM.get
    read = TYPE_READ
    pending_get = pending.get

    for code, sharer, address in zip(type_codes, sharer_col, addresses):
        cache = sharer_lookup(sharer)
        if cache is None:
            cache = len(sharer_index)
            if cache >= limit:
                raise _too_many_sharers(limit, sharer)
            sharer_index[sharer] = cache
        block = address >> shift
        if block in seen:
            first = False
        else:
            first = True
            seen_add(block)
        bit = 1 << cache
        held = mask_get(block, 0)
        if code == read:
            if held & bit:
                outcome = RESULT_RD_HIT
            else:
                outcome = _RM_FIRST if first else _WT_RM_CLN
                mask[block] = held | bit
        else:
            # Every write goes to the bus; snoopers drop their copies.
            n_others = (held & ~bit).bit_count()
            if held & bit:
                outcome = wt_wh(n_others) or _wt_wh(n_others)
            elif first:
                outcome = _WT_WM_FIRST
            else:
                outcome = wt_wm(n_others) or _wt_wm(n_others)
            mask[block] = bit
        if outcome is previous:
            run_length += 1
        elif previous is None:
            previous = outcome
            run_length = 1
        else:
            entry = pending_get(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
            previous = outcome
            run_length = 1
    return previous, run_length, instr_count


def _export_wti(protocol: Any, state: dict[str, Any]) -> None:
    mask = state["mask"]
    clean = LineState.CLEAN
    new_lines: list[dict] = [{} for _ in protocol._caches]
    for block, held in mask.items():
        remaining = held
        while remaining:
            low = remaining & -remaining
            new_lines[low.bit_length() - 1][block] = clean
            remaining ^= low
    for cache, cache_lines in zip(protocol._caches, new_lines):
        cache._lines = cache_lines


# ----------------------------------------------------------------------
# dragon
# ----------------------------------------------------------------------


def _import_dragon(protocol: Any, context: Any) -> dict[str, Any] | None:
    lines = _infinite_lines(protocol)
    if lines is None:
        return None
    mask: dict[int, int] = {}
    owner: dict[int, int] = {}
    for index, cache_lines in enumerate(lines):
        bit = 1 << index
        for block, state in cache_lines.items():
            mask[block] = mask.get(block, 0) | bit
            if state.is_owner:
                if block in owner:
                    return None
                owner[block] = index
    # Verify each block's line states are exactly the derived encoding.
    ve = DragonLineState.VALID_EXCLUSIVE
    dirty = DragonLineState.DIRTY
    sc = DragonLineState.SHARED_CLEAN
    sd = DragonLineState.SHARED_DIRTY
    for block, held in mask.items():
        own = owner.get(block)
        if held & (held - 1) == 0:
            state = lines[held.bit_length() - 1][block]
            if state is not (ve if own is None else dirty):
                return None
        else:
            remaining = held
            while remaining:
                low = remaining & -remaining
                index = low.bit_length() - 1
                if lines[index][block] is not (sd if index == own else sc):
                    return None
                remaining ^= low
    if not context.seen_blocks >= mask.keys():
        return None
    return {"mask": mask, "owner": owner}


def _loop_dragon(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    context: Any,
    state: dict[str, Any],
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
) -> tuple[ProtocolResult | None, int, int]:
    mask = state["mask"]
    owner = state["owner"]
    instr_count, type_codes, sharer_col, addresses = trace.data_view(
        simulator.sharer_key
    )
    sharer_index = context.sharer_index
    sharer_lookup = sharer_index.get
    seen = context.seen_blocks
    seen_add = seen.add
    shift = simulator.block_mapper.offset_bits
    limit = protocol.num_caches
    mask_get = mask.get
    read = TYPE_READ
    pending_get = pending.get

    for code, sharer, address in zip(type_codes, sharer_col, addresses):
        cache = sharer_lookup(sharer)
        if cache is None:
            cache = len(sharer_index)
            if cache >= limit:
                raise _too_many_sharers(limit, sharer)
            sharer_index[sharer] = cache
        block = address >> shift
        if block in seen:
            first = False
        else:
            first = True
            seen_add(block)
        bit = 1 << cache
        held = mask_get(block, 0)
        if code == read:
            if held & bit:
                outcome = RESULT_RD_HIT
            elif first:
                outcome = _RM_FIRST
                mask[block] = bit
            else:
                if block in owner:
                    # The owner supplies the block and stays owner
                    # (DIRTY demotes to SHARED_DIRTY, still owning).
                    outcome = _DG_RM_DRTY
                else:
                    outcome = _DG_RM_CLN
                mask[block] = held | bit
        else:
            if held & bit:
                if held == bit:
                    outcome = RESULT_WH_LOCAL
                else:
                    # Update broadcast: the writer takes ownership, a
                    # previous owner demotes to SHARED_CLEAN.
                    outcome = RESULT_WH_DISTRIB
                owner[block] = cache
            else:
                if first:
                    outcome = _WM_FIRST
                    mask[block] = bit
                elif block in owner:
                    outcome = _DG_WM_DRTY
                    mask[block] = held | bit
                elif held:
                    outcome = _DG_WM_CLN
                    mask[block] = held | bit
                else:
                    outcome = _DG_WM_ALONE
                    mask[block] = bit
                owner[block] = cache
        if outcome is previous:
            run_length += 1
        elif previous is None:
            previous = outcome
            run_length = 1
        else:
            entry = pending_get(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
            previous = outcome
            run_length = 1
    return previous, run_length, instr_count


def _export_dragon(protocol: Any, state: dict[str, Any]) -> None:
    mask = state["mask"]
    owner = state["owner"]
    ve = DragonLineState.VALID_EXCLUSIVE
    dirty = DragonLineState.DIRTY
    sc = DragonLineState.SHARED_CLEAN
    sd = DragonLineState.SHARED_DIRTY
    new_lines: list[dict] = [{} for _ in protocol._caches]
    for block, held in mask.items():
        own = owner.get(block)
        if held & (held - 1) == 0:
            index = held.bit_length() - 1
            new_lines[index][block] = ve if own is None else dirty
        else:
            remaining = held
            while remaining:
                low = remaining & -remaining
                index = low.bit_length() - 1
                new_lines[index][block] = sd if index == own else sc
                remaining ^= low
    for cache, cache_lines in zip(protocol._caches, new_lines):
        cache._lines = cache_lines


# ----------------------------------------------------------------------
# Finite-capacity kernels
# ----------------------------------------------------------------------
#
# Shared structure: per cache, a list of per-set plain dicts whose
# insertion order is the set's LRU order, oldest first — the compact
# mirror of FiniteCache's OrderedDict sets.  A touch is
# delete-and-reinsert; the replacement victim is next(iter(set_dict)).
# Because each reference installs at most one line, a replacement adds
# at most one trailing bus op to the infinite-model outcome.

#: Infinite-model outcome -> the same outcome with the trailing
#: write-back of a replaced dirty victim (dir0b / dir1nb / dragon
#: replacement).
_WITH_WB: dict[ProtocolResult, ProtocolResult] = {}


def _with_trailing_op(
    memo: dict[ProtocolResult, ProtocolResult], base: ProtocolResult, op: Any
) -> ProtocolResult:
    outcome = memo.get(base)
    if outcome is None:
        outcome = ProtocolResult(
            base.event,
            base.ops + (op,),
            clean_write_sharers=base.clean_write_sharers,
            wasted_invalidations=base.wasted_invalidations,
            pointer_evictions=base.pointer_evictions,
            directory_recalls=base.directory_recalls,
        )
        memo[base] = outcome
    return outcome


def _with_wb(base: ProtocolResult) -> ProtocolResult:
    """*base* plus the write-back of the replaced dirty victim."""
    return _with_trailing_op(_WITH_WB, base, write_back())


def _finite_geometry(protocol: Any) -> tuple[int, int] | None:
    """The (num_sets, associativity) every cache shares, or None unless
    each cache is the exact :class:`FiniteCache` of one geometry."""
    geometry: tuple[int, int] | None = None
    for cache in protocol._caches:
        if type(cache) is not FiniteCache:
            return None
        shape = (cache._num_sets, cache._associativity)
        if geometry is None:
            geometry = shape
        elif shape != geometry:
            return None
    return geometry


# ----------------------------------------------------------------------
# dir0b, finite
# ----------------------------------------------------------------------


def _import_dir0b_finite(protocol: Any, context: Any) -> dict[str, Any] | None:
    if protocol.dir_capacity is not None:
        return None  # directory recalls stay on the generic path
    directory = protocol._directory
    if type(directory) is not TwoBitDirectory:
        return None
    geometry = _finite_geometry(protocol)
    if geometry is None:
        return None
    num_sets, assoc = geometry

    mask: dict[int, int] = {}
    owner: dict[int, int] = {}
    sets: list[list[dict[int, None]]] = []
    clean = LineState.CLEAN
    dirty = LineState.DIRTY
    for index, cache in enumerate(protocol._caches):
        bit = 1 << index
        per_set: list[dict[int, None]] = []
        for line_set in cache._sets:
            per_set.append(dict.fromkeys(line_set))
            for block, line in line_set.items():
                mask[block] = mask.get(block, 0) | bit
                if line is dirty:
                    if block in owner:
                        return None
                    owner[block] = index
                elif line is not clean:
                    return None
        sets.append(per_set)
    for block, who in owner.items():
        if mask[block] != 1 << who:
            return None
    if not context.seen_blocks >= mask.keys():
        return None

    # Silent evictions decouple the two-bit state from the holder mask
    # (CLEAN_MANY is sticky), so the directory state is imported
    # explicitly and only cross-checked against the hard invariants.
    dirstate: dict[int, int] = {}
    for block, stored in directory._states.items():
        if stored is TwoBitState.CLEAN_ONE:
            dirstate[block] = 1
        elif stored is TwoBitState.CLEAN_MANY:
            dirstate[block] = 2
        elif stored is TwoBitState.DIRTY_ONE:
            dirstate[block] = 3
    for block, held in mask.items():
        code = dirstate.get(block, 0)
        if code == 0:
            return None  # held blocks always have a directory state
        if (code == 3) != (block in owner):
            return None
        if code == 1 and held & (held - 1):
            return None
    for block, code in dirstate.items():
        held = mask.get(block, 0)
        if code == 1 and held == 0:
            return None
        if code == 3 and block not in owner:
            return None
        # code == 2 with no holders is reachable under finite caches.
    return {
        "mask": mask,
        "owner": owner,
        "dirstate": dirstate,
        "sets": sets,
        "set_mask": num_sets - 1,
        "assoc": assoc,
    }


def _loop_dir0b_finite(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    context: Any,
    state: dict[str, Any],
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
) -> tuple[ProtocolResult | None, int, int]:
    mask = state["mask"]
    owner = state["owner"]
    dirstate = state["dirstate"]
    sets = state["sets"]
    set_mask = state["set_mask"]
    assoc = state["assoc"]
    instr_count, type_codes, sharer_col, addresses = trace.data_view(
        simulator.sharer_key
    )
    sharer_index = context.sharer_index
    sharer_lookup = sharer_index.get
    seen = context.seen_blocks
    seen_add = seen.add
    shift = simulator.block_mapper.offset_bits
    limit = protocol.num_caches
    mask_get = mask.get
    dirstate_get = dirstate.get
    wh_cln = _D0_WH_CLN.get
    wm_cln = _D0_WM_CLN.get
    read = TYPE_READ
    pending_get = pending.get

    def spill(cache: int, bit: int, line_set: dict) -> bool:
        """Replace the set's LRU line; True if the victim wrote back."""
        victim = next(iter(line_set))
        del line_set[victim]
        held = mask[victim] & ~bit
        if held:
            mask[victim] = held
        else:
            del mask[victim]
        if owner.get(victim) == cache:
            del owner[victim]
            del dirstate[victim]
            return True
        code = dirstate_get(victim, 0)
        if code == 1 or code == 3:
            del dirstate[victim]  # note_invalidated; CLEAN_MANY sticks
        return False

    for code, sharer, address in zip(type_codes, sharer_col, addresses):
        cache = sharer_lookup(sharer)
        if cache is None:
            cache = len(sharer_index)
            if cache >= limit:
                raise _too_many_sharers(limit, sharer)
            sharer_index[sharer] = cache
        block = address >> shift
        if block in seen:
            first = False
        else:
            first = True
            seen_add(block)
        bit = 1 << cache
        held = mask_get(block, 0)
        line_set = sets[cache][block & set_mask]
        if code == read:
            if held & bit:
                outcome = RESULT_RD_HIT
                del line_set[block]
                line_set[block] = None
            else:
                if first:
                    base = _RM_FIRST
                else:
                    own = owner.pop(block, None)
                    if own is not None:
                        # The owner flushes and keeps a clean copy.
                        dirstate[block] = 1
                        own_set = sets[own][block & set_mask]
                        del own_set[block]
                        own_set[block] = None
                        base = _D0_RM_DRTY
                    else:
                        base = _D0_RM_CLN
                wrote_back = len(line_set) >= assoc and spill(cache, bit, line_set)
                line_set[block] = None
                mask[block] = held | bit
                dirstate[block] = 1 if dirstate_get(block, 0) == 0 else 2
                outcome = _with_wb(base) if wrote_back else base
        else:
            if held & bit:
                if owner.get(block) == cache:
                    outcome = RESULT_WH_BLK_DRTY
                    del line_set[block]
                    line_set[block] = None
                else:
                    # Sticky CLEAN_MANY broadcasts even with no other
                    # holders left, so branch on the directory state.
                    if dirstate_get(block, 0) == 1:
                        outcome = _D0_WH_SOLE
                    else:
                        n_others = (held & ~bit).bit_count()
                        outcome = wh_cln(n_others) or _d0_wh_cln(n_others)
                    rem = held & ~bit
                    while rem:
                        low = rem & -rem
                        del sets[low.bit_length() - 1][block & set_mask][block]
                        rem ^= low
                    mask[block] = bit
                    owner[block] = cache
                    dirstate[block] = 3
                    del line_set[block]
                    line_set[block] = None
            else:
                if first:
                    base = _WM_FIRST
                elif block in owner:
                    own = owner.pop(block)
                    del sets[own][block & set_mask][block]
                    base = _D0_WM_DRTY
                elif held:
                    n_holders = held.bit_count()
                    base = wm_cln(n_holders) or _d0_wm_cln(n_holders)
                    rem = held
                    while rem:
                        low = rem & -rem
                        del sets[low.bit_length() - 1][block & set_mask][block]
                        rem ^= low
                elif dirstate_get(block, 0):
                    base = wm_cln(0) or _d0_wm_cln(0)
                else:
                    base = _D0_WM_ALONE
                wrote_back = len(line_set) >= assoc and spill(cache, bit, line_set)
                line_set[block] = None
                mask[block] = bit
                owner[block] = cache
                dirstate[block] = 3
                outcome = _with_wb(base) if wrote_back else base
        if outcome is previous:
            run_length += 1
        elif previous is None:
            previous = outcome
            run_length = 1
        else:
            entry = pending_get(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
            previous = outcome
            run_length = 1
    return previous, run_length, instr_count


def _export_dir0b_finite(protocol: Any, state: dict[str, Any]) -> None:
    owner = state["owner"]
    clean = LineState.CLEAN
    dirty = LineState.DIRTY
    for index, (cache, per_set) in enumerate(zip(protocol._caches, state["sets"])):
        cache._sets = [
            OrderedDict(
                (block, dirty if owner.get(block) == index else clean)
                for block in line_set
            )
            for line_set in per_set
        ]
    lookup = (
        None,
        TwoBitState.CLEAN_ONE,
        TwoBitState.CLEAN_MANY,
        TwoBitState.DIRTY_ONE,
    )
    protocol._directory._states = {
        block: lookup[code] for block, code in state["dirstate"].items()
    }


# ----------------------------------------------------------------------
# dir1nb, finite
# ----------------------------------------------------------------------


def _import_dir1nb_finite(protocol: Any, context: Any) -> dict[str, Any] | None:
    if protocol.dir_capacity is not None:
        return None
    directory = protocol._directory
    if (
        type(directory) is not LimitedPointerDirectory
        or directory.num_pointers != 1
        or directory.broadcast_bit
    ):
        return None
    geometry = _finite_geometry(protocol)
    if geometry is None:
        return None
    num_sets, assoc = geometry

    holders: dict[int, int] = {}
    sets: list[list[dict[int, None]]] = []
    for index, cache in enumerate(protocol._caches):
        per_set: list[dict[int, None]] = []
        for line_set in cache._sets:
            per_set.append(dict.fromkeys(line_set))
            for block, line in line_set.items():
                if block in holders:
                    return None  # two copies: outside the dir1nb model
                if line is LineState.DIRTY:
                    holders[block] = (index << 1) | 1
                elif line is LineState.CLEAN:
                    holders[block] = index << 1
                else:
                    return None
        sets.append(per_set)
    if not context.seen_blocks >= holders.keys():
        return None
    entries = directory._entries
    for block, stored in entries.items():
        if stored.broadcast:
            return None
        encoded = holders.get(block)
        if encoded is None:
            if stored.pointers or stored.dirty:
                return None
        elif stored.pointers != [encoded >> 1] or stored.dirty != bool(encoded & 1):
            return None
    for block in holders:
        if block not in entries:
            return None
    return {
        "holders": holders,
        "sets": sets,
        "set_mask": num_sets - 1,
        "assoc": assoc,
    }


def _loop_dir1nb_finite(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    context: Any,
    state: dict[str, Any],
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
) -> tuple[ProtocolResult | None, int, int]:
    holders = state["holders"]
    sets = state["sets"]
    set_mask = state["set_mask"]
    assoc = state["assoc"]
    instr_count, type_codes, sharer_col, addresses = trace.data_view(
        simulator.sharer_key
    )
    sharer_index = context.sharer_index
    sharer_lookup = sharer_index.get
    seen = context.seen_blocks
    seen_add = seen.add
    shift = simulator.block_mapper.offset_bits
    limit = protocol.num_caches
    holders_get = holders.get
    read = TYPE_READ
    pending_get = pending.get

    for code, sharer, address in zip(type_codes, sharer_col, addresses):
        cache = sharer_lookup(sharer)
        if cache is None:
            cache = len(sharer_index)
            if cache >= limit:
                raise _too_many_sharers(limit, sharer)
            sharer_index[sharer] = cache
        block = address >> shift
        if block in seen:
            first = False
        else:
            first = True
            seen_add(block)
        encoded = holders_get(block)
        line_set = sets[cache][block & set_mask]
        if code == read:
            if encoded is not None and encoded >> 1 == cache:
                outcome = RESULT_RD_HIT
                del line_set[block]
                line_set[block] = None
            else:
                if first:
                    base = _RM_FIRST
                elif encoded is None:
                    base = _D1_RM_NOHOLDER
                else:
                    del sets[encoded >> 1][block & set_mask][block]
                    base = _D1_RM_DRTY if encoded & 1 else _D1_RM_CLN
                wrote_back = 0
                if len(line_set) >= assoc:
                    victim = next(iter(line_set))
                    del line_set[victim]
                    wrote_back = holders.pop(victim) & 1
                line_set[block] = None
                holders[block] = cache << 1
                outcome = _with_wb(base) if wrote_back else base
        else:
            if encoded is not None and encoded >> 1 == cache:
                del line_set[block]
                line_set[block] = None
                if encoded & 1:
                    outcome = RESULT_WH_BLK_DRTY
                else:
                    outcome = _D1_WH_CLN
                    holders[block] = encoded | 1
            else:
                if first:
                    base = _WM_FIRST
                elif encoded is None:
                    base = _D1_WM_NOHOLDER
                else:
                    del sets[encoded >> 1][block & set_mask][block]
                    base = _D1_WM_DRTY if encoded & 1 else _D1_WM_CLN
                wrote_back = 0
                if len(line_set) >= assoc:
                    victim = next(iter(line_set))
                    del line_set[victim]
                    wrote_back = holders.pop(victim) & 1
                line_set[block] = None
                holders[block] = (cache << 1) | 1
                outcome = _with_wb(base) if wrote_back else base
        if outcome is previous:
            run_length += 1
        elif previous is None:
            previous = outcome
            run_length = 1
        else:
            entry = pending_get(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
            previous = outcome
            run_length = 1
    return previous, run_length, instr_count


def _export_dir1nb_finite(protocol: Any, state: dict[str, Any]) -> None:
    holders = state["holders"]
    clean = LineState.CLEAN
    dirty = LineState.DIRTY
    for index, (cache, per_set) in enumerate(zip(protocol._caches, state["sets"])):
        cache._sets = [
            OrderedDict(
                (block, dirty if holders[block] & 1 else clean)
                for block in line_set
            )
            for line_set in per_set
        ]
    protocol._directory._entries = {
        block: _PointerEntry(dirty=bool(encoded & 1), pointers=[encoded >> 1])
        for block, encoded in holders.items()
    }


# ----------------------------------------------------------------------
# wti, finite
# ----------------------------------------------------------------------


def _import_wti_finite(protocol: Any, context: Any) -> dict[str, Any] | None:
    geometry = _finite_geometry(protocol)
    if geometry is None:
        return None
    num_sets, assoc = geometry
    mask: dict[int, int] = {}
    sets: list[list[dict[int, None]]] = []
    clean = LineState.CLEAN
    for index, cache in enumerate(protocol._caches):
        bit = 1 << index
        per_set: list[dict[int, None]] = []
        for line_set in cache._sets:
            per_set.append(dict.fromkeys(line_set))
            for block, line in line_set.items():
                if line is not clean:
                    return None  # write-through lines are never dirty
                mask[block] = mask.get(block, 0) | bit
        sets.append(per_set)
    if not context.seen_blocks >= mask.keys():
        return None
    return {"mask": mask, "sets": sets, "set_mask": num_sets - 1, "assoc": assoc}


def _loop_wti_finite(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    context: Any,
    state: dict[str, Any],
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
) -> tuple[ProtocolResult | None, int, int]:
    mask = state["mask"]
    sets = state["sets"]
    set_mask = state["set_mask"]
    assoc = state["assoc"]
    instr_count, type_codes, sharer_col, addresses = trace.data_view(
        simulator.sharer_key
    )
    sharer_index = context.sharer_index
    sharer_lookup = sharer_index.get
    seen = context.seen_blocks
    seen_add = seen.add
    shift = simulator.block_mapper.offset_bits
    limit = protocol.num_caches
    mask_get = mask.get
    wt_wh = _WT_WH.get
    wt_wm = _WT_WM.get
    read = TYPE_READ
    pending_get = pending.get

    def spill(bit: int, line_set: dict) -> None:
        # Write-through victims drop silently: nothing is dirty and
        # snoop bookkeeping has no directory to notify.
        victim = next(iter(line_set))
        del line_set[victim]
        held = mask[victim] & ~bit
        if held:
            mask[victim] = held
        else:
            del mask[victim]

    for code, sharer, address in zip(type_codes, sharer_col, addresses):
        cache = sharer_lookup(sharer)
        if cache is None:
            cache = len(sharer_index)
            if cache >= limit:
                raise _too_many_sharers(limit, sharer)
            sharer_index[sharer] = cache
        block = address >> shift
        if block in seen:
            first = False
        else:
            first = True
            seen_add(block)
        bit = 1 << cache
        held = mask_get(block, 0)
        line_set = sets[cache][block & set_mask]
        if code == read:
            if held & bit:
                outcome = RESULT_RD_HIT
                del line_set[block]
                line_set[block] = None
            else:
                outcome = _RM_FIRST if first else _WT_RM_CLN
                if len(line_set) >= assoc:
                    spill(bit, line_set)
                line_set[block] = None
                mask[block] = held | bit
        else:
            # Every write goes to the bus; snoopers drop their copies.
            n_others = (held & ~bit).bit_count()
            rem = held & ~bit
            while rem:
                low = rem & -rem
                del sets[low.bit_length() - 1][block & set_mask][block]
                rem ^= low
            if held & bit:
                outcome = wt_wh(n_others) or _wt_wh(n_others)
                del line_set[block]
                line_set[block] = None
            else:
                if first:
                    outcome = _WT_WM_FIRST
                else:
                    outcome = wt_wm(n_others) or _wt_wm(n_others)
                if len(line_set) >= assoc:
                    spill(bit, line_set)
                line_set[block] = None
            mask[block] = bit
        if outcome is previous:
            run_length += 1
        elif previous is None:
            previous = outcome
            run_length = 1
        else:
            entry = pending_get(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
            previous = outcome
            run_length = 1
    return previous, run_length, instr_count


def _export_wti_finite(protocol: Any, state: dict[str, Any]) -> None:
    clean = LineState.CLEAN
    for cache, per_set in zip(protocol._caches, state["sets"]):
        cache._sets = [
            OrderedDict((block, clean) for block in line_set)
            for line_set in per_set
        ]


# ----------------------------------------------------------------------
# dragon, finite
# ----------------------------------------------------------------------

#: DragonLineState <-> compact int code (owner states are >= 2).
_DG_CODES: dict[DragonLineState, int] = {
    DragonLineState.VALID_EXCLUSIVE: 0,
    DragonLineState.SHARED_CLEAN: 1,
    DragonLineState.SHARED_DIRTY: 2,
    DragonLineState.DIRTY: 3,
}
_DG_STATES: tuple[DragonLineState, ...] = (
    DragonLineState.VALID_EXCLUSIVE,
    DragonLineState.SHARED_CLEAN,
    DragonLineState.SHARED_DIRTY,
    DragonLineState.DIRTY,
)


def _import_dragon_finite(protocol: Any, context: Any) -> dict[str, Any] | None:
    geometry = _finite_geometry(protocol)
    if geometry is None:
        return None
    num_sets, assoc = geometry
    code_of = _DG_CODES.get
    mask: dict[int, int] = {}
    owner: dict[int, int] = {}
    exclusive: set[int] = set()
    sets: list[list[dict[int, int]]] = []
    for index, cache in enumerate(protocol._caches):
        bit = 1 << index
        per_set: list[dict[int, int]] = []
        for line_set in cache._sets:
            coded: dict[int, int] = {}
            for block, line in line_set.items():
                line_code = code_of(line)
                if line_code is None:
                    return None
                coded[block] = line_code
                mask[block] = mask.get(block, 0) | bit
                if line_code >= 2:
                    if block in owner:
                        return None
                    owner[block] = index
                if line_code == 0 or line_code == 3:
                    exclusive.add(block)
            per_set.append(coded)
        sets.append(per_set)
    for block in exclusive:
        held = mask[block]
        if held & (held - 1):
            return None  # VE / D lines must be sole holders
    if not context.seen_blocks >= mask.keys():
        return None
    return {
        "mask": mask,
        "owner": owner,
        "sets": sets,
        "set_mask": num_sets - 1,
        "assoc": assoc,
    }


def _loop_dragon_finite(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    context: Any,
    state: dict[str, Any],
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
) -> tuple[ProtocolResult | None, int, int]:
    mask = state["mask"]
    owner = state["owner"]
    sets = state["sets"]
    set_mask = state["set_mask"]
    assoc = state["assoc"]
    instr_count, type_codes, sharer_col, addresses = trace.data_view(
        simulator.sharer_key
    )
    sharer_index = context.sharer_index
    sharer_lookup = sharer_index.get
    seen = context.seen_blocks
    seen_add = seen.add
    shift = simulator.block_mapper.offset_bits
    limit = protocol.num_caches
    mask_get = mask.get
    read = TYPE_READ
    pending_get = pending.get

    def demote(rem: int, block: int) -> None:
        """Shift joining-block holders to shared states, as the object
        model's ``_demote_to_shared`` does (VE -> SC, D -> SD, both
        touched; already-shared states are left in place)."""
        index_in_set = block & set_mask
        while rem:
            low = rem & -rem
            holder_set = sets[low.bit_length() - 1][index_in_set]
            line_code = holder_set[block]
            if line_code == 0:
                del holder_set[block]
                holder_set[block] = 1
            elif line_code == 3:
                del holder_set[block]
                holder_set[block] = 2
            rem ^= low

    def install(cache: int, bit: int, block: int, line_code: int) -> bool:
        """Install a line, replacing the set's LRU victim; True when the
        victim owned its block (costing the dirty write-back)."""
        line_set = sets[cache][block & set_mask]
        flushed = False
        if len(line_set) >= assoc:
            victim = next(iter(line_set))
            victim_code = line_set.pop(victim)
            held = mask[victim] & ~bit
            if held:
                mask[victim] = held
            else:
                del mask[victim]
            if victim_code >= 2:
                del owner[victim]
                flushed = True
        line_set[block] = line_code
        return flushed

    for code, sharer, address in zip(type_codes, sharer_col, addresses):
        cache = sharer_lookup(sharer)
        if cache is None:
            cache = len(sharer_index)
            if cache >= limit:
                raise _too_many_sharers(limit, sharer)
            sharer_index[sharer] = cache
        block = address >> shift
        if block in seen:
            first = False
        else:
            first = True
            seen_add(block)
        bit = 1 << cache
        held = mask_get(block, 0)
        if code == read:
            if held & bit:
                outcome = RESULT_RD_HIT
                line_set = sets[cache][block & set_mask]
                line_set[block] = line_set.pop(block)
            else:
                if first:
                    base = _RM_FIRST
                    flushed = install(cache, bit, block, 0)
                    mask[block] = bit
                elif block in owner:
                    base = _DG_RM_DRTY
                    demote(held, block)
                    flushed = install(cache, bit, block, 1)
                    mask[block] = held | bit
                elif held:
                    base = _DG_RM_CLN
                    demote(held, block)
                    flushed = install(cache, bit, block, 1)
                    mask[block] = held | bit
                else:
                    # All copies silently evicted; memory is current.
                    base = _DG_RM_CLN
                    flushed = install(cache, bit, block, 0)
                    mask[block] = bit
                outcome = _with_wb(base) if flushed else base
        else:
            if held & bit:
                line_set = sets[cache][block & set_mask]
                others = held & ~bit
                if not others:
                    del line_set[block]
                    line_set[block] = 3
                    owner[block] = cache
                    outcome = RESULT_WH_LOCAL
                else:
                    # Update broadcast: a previous owner demotes to
                    # SHARED_CLEAN (touched), the writer takes SHARED_DIRTY.
                    index_in_set = block & set_mask
                    rem = others
                    while rem:
                        low = rem & -rem
                        holder_set = sets[low.bit_length() - 1][index_in_set]
                        if holder_set[block] >= 2:
                            del holder_set[block]
                            holder_set[block] = 1
                        rem ^= low
                    del line_set[block]
                    line_set[block] = 2
                    owner[block] = cache
                    outcome = RESULT_WH_DISTRIB
            else:
                if first:
                    base = _WM_FIRST
                    flushed = install(cache, bit, block, 3)
                    mask[block] = bit
                elif block in owner:
                    base = _DG_WM_DRTY
                    own = owner.pop(block)
                    own_set = sets[own][block & set_mask]
                    del own_set[block]
                    own_set[block] = 1
                    flushed = install(cache, bit, block, 2)
                    mask[block] = held | bit
                elif held:
                    base = _DG_WM_CLN
                    demote(held, block)
                    flushed = install(cache, bit, block, 2)
                    mask[block] = held | bit
                else:
                    base = _DG_WM_ALONE
                    flushed = install(cache, bit, block, 3)
                    mask[block] = bit
                owner[block] = cache
                outcome = _with_wb(base) if flushed else base
        if outcome is previous:
            run_length += 1
        elif previous is None:
            previous = outcome
            run_length = 1
        else:
            entry = pending_get(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
            previous = outcome
            run_length = 1
    return previous, run_length, instr_count


def _export_dragon_finite(protocol: Any, state: dict[str, Any]) -> None:
    states = _DG_STATES
    for cache, per_set in zip(protocol._caches, state["sets"]):
        cache._sets = [
            OrderedDict(
                (block, states[line_code]) for block, line_code in line_set.items()
            )
            for line_set in per_set
        ]


# ----------------------------------------------------------------------
# Sessions and dispatch
# ----------------------------------------------------------------------

#: Exact protocol type -> (importer, loop, exporter).  Keyed by type
#: identity on purpose: subclasses (and wrappers) take the generic
#: object-model path.
_KERNELS: dict[type, tuple[Callable, Callable, Callable]] = {
    Dir0BProtocol: (_import_dir0b, _loop_dir0b, _export_dir0b),
    Dir1NBProtocol: (_import_dir1nb, _loop_dir1nb, _export_dir1nb),
    WTIProtocol: (_import_wti, _loop_wti, _export_wti),
    DragonProtocol: (_import_dragon, _loop_dragon, _export_dragon),
}

#: Capacity-aware kernels for the same protocols; tried after the
#: infinite table (whose importers bail on finite caches), so dispatch
#: picks whichever matches the live cache model.
_FINITE_KERNELS: dict[type, tuple[Callable, Callable, Callable]] = {
    Dir0BProtocol: (_import_dir0b_finite, _loop_dir0b_finite, _export_dir0b_finite),
    Dir1NBProtocol: (
        _import_dir1nb_finite, _loop_dir1nb_finite, _export_dir1nb_finite,
    ),
    WTIProtocol: (_import_wti_finite, _loop_wti_finite, _export_wti_finite),
    DragonProtocol: (
        _import_dragon_finite, _loop_dragon_finite, _export_dragon_finite,
    ),
}


class KernelSession:
    """One kernel run kept open across a sequence of columnar chunks.

    Created by :func:`open_kernel_session` after a successful state
    import.  Between :meth:`run_chunk` calls the protocol's state lives
    only in the compact encoding (interned per-block sharer bitmasks
    and owner ids) — the object model is reconstructed exactly once, at
    :meth:`finish`.  Identity-run batching spans chunk boundaries, so
    the accumulated result is bit-identical to one continuous
    :func:`kernel_run` over the concatenated trace.
    """

    __slots__ = (
        "_simulator", "_protocol", "_result", "_context", "_state",
        "_loop", "_export", "_pending", "_previous", "_run_length",
        "_instr_count", "_records", "_finished",
    )

    def __init__(
        self,
        simulator: Any,
        protocol: Any,
        result: Any,
        context: Any,
        state: dict[str, Any],
        loop: Callable,
        export: Callable,
    ) -> None:
        self._simulator = simulator
        self._protocol = protocol
        self._result = result
        self._context = context
        self._state = state
        self._loop = loop
        self._export = export
        self._pending: dict[int, list] = {}
        self._previous: ProtocolResult | None = None
        self._run_length = 0
        self._instr_count = 0
        self._records = 0
        self._finished = False

    def run_chunk(self, chunk: ColumnarTrace) -> None:
        """Run one columnar chunk through the hot loop."""
        if self._finished:
            raise RuntimeError("kernel session already finished")
        self._previous, self._run_length, instr = self._loop(
            self._simulator,
            chunk,
            self._protocol,
            self._context,
            self._state,
            self._pending,
            self._previous,
            self._run_length,
        )
        self._instr_count += instr
        self._records += len(chunk)

    def finish(self) -> Any:
        """Export the compact state back and return the result.

        After this the protocol's caches/directory are exactly as the
        object model would have left them; the session is closed.
        """
        if self._finished:
            return self._result
        self._finished = True
        self._export(self._protocol, self._state)
        _flush_batches(
            self._result,
            self._pending,
            self._previous,
            self._run_length,
            self._instr_count,
        )
        self._context.records_done += self._records
        return self._result


def has_kernel(protocol: Any) -> bool:
    """True if *protocol*'s exact type has a table-driven kernel."""
    kind = type(protocol)
    return kind in _KERNELS or kind in _FINITE_KERNELS


def open_kernel_session(
    simulator: Any, protocol: Any, result: Any, context: Any
) -> KernelSession | None:
    """Import *protocol*'s live state and open a chunk-streaming session.

    Tries the infinite-cache kernel first, then the capacity-aware one
    (each importer bails on the other's cache model).  Returns None
    (protocol and context untouched) when no kernel exists for the
    protocol's exact type or the live state fails an import invariant —
    the caller then falls back to the generic columnar loop for every
    chunk.
    """
    for table in (_KERNELS, _FINITE_KERNELS):
        triple = table.get(type(protocol))
        if triple is None:
            continue
        importer, loop, export = triple
        state = importer(protocol, context)
        if state is not None:
            return KernelSession(
                simulator, protocol, result, context, state, loop, export
            )
    return None


def kernel_run(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    result: Any,
    context: Any,
) -> Any | None:
    """Run *trace* through a state-table kernel if one safely applies.

    Returns the completed result, or None when no kernel exists for the
    protocol's exact type or the live state fails an import invariant —
    the caller then falls back to the generic columnar loop.  A None
    return guarantees the protocol and context are untouched.
    """
    session = open_kernel_session(simulator, protocol, result, context)
    if session is None:
        return None
    session.run_chunk(trace)
    return session.finish()
