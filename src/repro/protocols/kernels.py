"""Table-driven columnar kernels for the paper's hot protocols.

The generic columnar fast path (``Simulator._run_columnar``) still pays
per-reference *method dispatch*: every data reference walks
``on_read``/``on_write`` through cache-model calls, directory
bookkeeping, and ``ProtocolResult`` construction.  For the four
protocols that dominate sweeps — ``dir0b``, ``dir1nb``, ``wti``, and
``dragon`` — the reachable state space under infinite caches is tiny,
so each protocol's inner loop collapses to a handful of dict lookups
over a **compact state encoding** plus a table of precomputed, shared
:class:`ProtocolResult` instances keyed on (state, op, holder
relation).

Each kernel is split into three stages so chunk-streamed simulation
(:mod:`repro.store`) can amortize the expensive ends:

* an **importer** reads the protocol's live object state into the
  compact encoding, cross-checking every derived invariant;
* a **loop** runs the hot per-reference state machine over one
  columnar chunk, accumulating identity-batched outcomes;
* an **exporter** writes the compact state back into the protocol's
  caches and directory, exactly as the object model would have left
  them.

:func:`kernel_run` composes all three for a single in-memory trace;
:func:`open_kernel_session` returns a :class:`KernelSession` that
imports once, loops over any number of chunks with the compact
(interned sharer-bitmask) state resident in between, and exports once
at :meth:`KernelSession.finish` — so a multi-gigabyte chunked trace
never materializes per-chunk object-model state.

Bit-identity contract
---------------------

A kernel is an alternative *evaluator*, not an alternative *model*:

* it engages only for exact protocol/cache/directory types (any
  wrapper — a conformance oracle, a mutation-testing saboteur, a
  finite cache — fails the ``type() is`` gates and falls back to the
  generic path, so differential and chaos suites still exercise the
  real object model);
* before running, the importer cross-checks the live state; any
  inconsistency aborts the kernel (returning None with protocol state
  untouched) and the generic path runs instead;
* after running, the exporter leaves the protocol's caches and
  directory exactly as the object model would have — segmented
  (checkpoint-windowed) simulation keeps feeding the same protocol
  instance through import/export round trips;
* event classification, bus-op tuples, ``clean_write_sharers``
  populations, and the identity-batched accumulation replicate the
  generic path decision for decision, so results are bit-identical
  (``tests/test_kernel_differential.py`` holds this per protocol, and
  the engine-parity / ``repro verify`` suites hold it end to end).

State encodings (all under infinite caches):

* ``dir0b`` — per block: a holder bitmask plus an optional dirty
  owner.  The two-bit directory state is a pure function of these
  (popcount 0/1/many, owner present or not).
* ``dir1nb`` — per block: ``(holder << 1) | dirty`` — at most one
  cache ever holds a block.
* ``wti`` — per block: a holder bitmask (write-through caches are
  always clean).
* ``dragon`` — per block: a holder bitmask plus an optional owner;
  the four Dragon line states are derived (sole holder: VE, or D when
  owning; shared: SC with the owner SD).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.memory.cache import InfiniteCache
from repro.memory.directory import (
    LimitedPointerDirectory,
    TwoBitDirectory,
    TwoBitState,
    _PointerEntry,
)
from repro.memory.line import DragonLineState, LineState
from repro.protocols.directory.dir0b import Dir0BProtocol
from repro.protocols.directory.dir1nb import Dir1NBProtocol
from repro.protocols.events import (
    RESULT_RD_HIT,
    RESULT_WH_BLK_DRTY,
    RESULT_WH_DISTRIB,
    RESULT_WH_LOCAL,
    EventType,
    ProtocolResult,
    broadcast_invalidate,
    cache_access,
    dir_check,
    dir_check_overlapped,
    invalidate,
    mem_access,
    write_back,
    write_word,
)
from repro.protocols.snoopy.dragon import DragonProtocol
from repro.protocols.snoopy.wti import WTIProtocol
from repro.trace.columnar import TYPE_READ, ColumnarTrace

# ----------------------------------------------------------------------
# Precomputed outcome tables.  Every entry matches, field for field, the
# ProtocolResult the object model constructs for the same transition.
# ----------------------------------------------------------------------

_RM_FIRST = ProtocolResult(EventType.RM_FIRST_REF)
_WM_FIRST = ProtocolResult(EventType.WM_FIRST_REF)

# dir0b (two-bit broadcast directory, multicopy state machine)
_D0_RM_DRTY = ProtocolResult(
    EventType.RM_BLK_DRTY, (dir_check_overlapped(), write_back())
)
_D0_RM_CLN = ProtocolResult(
    EventType.RM_BLK_CLN, (dir_check_overlapped(), mem_access())
)
_D0_WM_DRTY = ProtocolResult(
    EventType.WM_BLK_DRTY,
    (dir_check_overlapped(), broadcast_invalidate(), write_back()),
)
_D0_WM_ALONE = ProtocolResult(
    EventType.WM_BLK_CLN,
    (dir_check_overlapped(), mem_access()),
    clean_write_sharers=0,
)
_D0_WH_SOLE = ProtocolResult(
    EventType.WH_BLK_CLN, (dir_check(),), clean_write_sharers=0
)
#: Write hit on a clean-shared block, keyed by the other-holder count.
_D0_WH_CLN: dict[int, ProtocolResult] = {}
#: Write miss on a clean-shared block, keyed by the holder count.
_D0_WM_CLN: dict[int, ProtocolResult] = {}

# dir1nb (single pointer, no broadcast: at most one copy machine-wide)
_D1_WH_CLN = ProtocolResult(EventType.WH_BLK_CLN, clean_write_sharers=0)
_D1_RM_NOHOLDER = ProtocolResult(
    EventType.RM_BLK_CLN, (dir_check_overlapped(), mem_access())
)
_D1_RM_DRTY = ProtocolResult(
    EventType.RM_BLK_DRTY, (dir_check_overlapped(), invalidate(1), write_back())
)
_D1_RM_CLN = ProtocolResult(
    EventType.RM_BLK_CLN, (dir_check_overlapped(), invalidate(1), mem_access())
)
_D1_WM_NOHOLDER = ProtocolResult(
    EventType.WM_BLK_CLN, (dir_check_overlapped(), mem_access())
)
_D1_WM_DRTY = ProtocolResult(
    EventType.WM_BLK_DRTY, (dir_check_overlapped(), invalidate(1), write_back())
)
_D1_WM_CLN = ProtocolResult(
    EventType.WM_BLK_CLN, (dir_check_overlapped(), invalidate(1), mem_access())
)

# wti (write-through with invalidate; every write rides one bus word)
_WT_RM_CLN = ProtocolResult(EventType.RM_BLK_CLN, (mem_access(),))
_WT_WM_FIRST = ProtocolResult(EventType.WM_FIRST_REF, (write_word(),))
#: Write hit, keyed by the other-holder count snooped off the bus.
_WT_WH: dict[int, ProtocolResult] = {}
#: Allocating write miss, keyed by the other-holder count.
_WT_WM: dict[int, ProtocolResult] = {}

# dragon (write-update; misses and updates, never invalidations)
_DG_RM_DRTY = ProtocolResult(EventType.RM_BLK_DRTY, (cache_access(),))
_DG_RM_CLN = ProtocolResult(EventType.RM_BLK_CLN, (mem_access(),))
_DG_WM_DRTY = ProtocolResult(
    EventType.WM_BLK_DRTY, (cache_access(), write_word())
)
_DG_WM_CLN = ProtocolResult(EventType.WM_BLK_CLN, (mem_access(), write_word()))
_DG_WM_ALONE = ProtocolResult(EventType.WM_BLK_CLN, (mem_access(),))


def _d0_wh_cln(n_others: int) -> ProtocolResult:
    outcome = _D0_WH_CLN.get(n_others)
    if outcome is None:
        outcome = ProtocolResult(
            EventType.WH_BLK_CLN,
            (dir_check(), broadcast_invalidate()),
            clean_write_sharers=n_others,
        )
        _D0_WH_CLN[n_others] = outcome
    return outcome


def _d0_wm_cln(n_holders: int) -> ProtocolResult:
    outcome = _D0_WM_CLN.get(n_holders)
    if outcome is None:
        outcome = ProtocolResult(
            EventType.WM_BLK_CLN,
            (dir_check_overlapped(), mem_access(), broadcast_invalidate()),
            clean_write_sharers=n_holders,
        )
        _D0_WM_CLN[n_holders] = outcome
    return outcome


def _wt_wh(n_others: int) -> ProtocolResult:
    outcome = _WT_WH.get(n_others)
    if outcome is None:
        outcome = ProtocolResult(
            EventType.WH_BLK_CLN, (write_word(),), clean_write_sharers=n_others
        )
        _WT_WH[n_others] = outcome
    return outcome


def _wt_wm(n_others: int) -> ProtocolResult:
    outcome = _WT_WM.get(n_others)
    if outcome is None:
        outcome = ProtocolResult(
            EventType.WM_BLK_CLN,
            (write_word(), mem_access()),
            clean_write_sharers=n_others,
        )
        _WT_WM[n_others] = outcome
    return outcome


# ----------------------------------------------------------------------
# Shared scaffolding
# ----------------------------------------------------------------------


def _infinite_lines(protocol: Any) -> list[dict] | None:
    """Each cache's line dict, or None unless every cache is the exact
    :class:`InfiniteCache` (finite caches change reachable states)."""
    lines = []
    for cache in protocol._caches:
        if type(cache) is not InfiniteCache:
            return None
        lines.append(cache._lines)
    return lines


def _too_many_sharers(limit: int, sharer: int) -> ConfigurationError:
    return ConfigurationError(
        f"trace contains more than num_caches={limit} "
        f"distinct sharers (sharer id {sharer})"
    )


def _flush_batches(
    result: Any,
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
    instr_count: int,
) -> None:
    """Flush the identity-run batches exactly as ``_run_columnar`` does."""
    if previous is not None:
        entry = pending.get(id(previous))
        if entry is None:
            pending[id(previous)] = [previous, run_length]
        else:
            entry[1] += run_length
    record_batch = result.record_batch
    for outcome, count in pending.values():
        record_batch(outcome, count)
    result.record_instructions(instr_count)


# ----------------------------------------------------------------------
# dir0b
# ----------------------------------------------------------------------


def _import_masked(
    lines: list[dict], seen: set
) -> tuple[dict[int, int], dict[int, int]] | None:
    """Collect (holder bitmask, dirty owner) per block from cache lines.

    Returns None on any state outside the multicopy model: an unknown
    line state, two dirty owners, a dirty owner sharing with others, or
    a held block the context has never seen (which would let a
    ``first_ref`` land on a held block — unreachable in the object
    model, so the kernel refuses to guess).
    """
    mask: dict[int, int] = {}
    owner: dict[int, int] = {}
    clean = LineState.CLEAN
    dirty = LineState.DIRTY
    for index, cache_lines in enumerate(lines):
        bit = 1 << index
        for block, state in cache_lines.items():
            mask[block] = mask.get(block, 0) | bit
            if state is dirty:
                if block in owner:
                    return None
                owner[block] = index
            elif state is not clean:
                return None
    for block, who in owner.items():
        if mask[block] != 1 << who:
            return None
    if not seen >= mask.keys():
        return None
    return mask, owner


def _import_dir0b(protocol: Any, context: Any) -> dict[str, Any] | None:
    directory = protocol._directory
    if type(directory) is not TwoBitDirectory:
        return None
    lines = _infinite_lines(protocol)
    if lines is None:
        return None
    imported = _import_masked(lines, context.seen_blocks)
    if imported is None:
        return None
    mask, owner = imported

    # The two-bit state must be exactly the function of (mask, owner)
    # the object model maintains; otherwise transitions would diverge.
    states = directory._states
    not_cached = TwoBitState.NOT_CACHED
    for block in mask.keys() | states.keys():
        held = mask.get(block, 0)
        if block in owner:
            expected = TwoBitState.DIRTY_ONE
        elif held == 0:
            expected = not_cached
        elif held & (held - 1) == 0:
            expected = TwoBitState.CLEAN_ONE
        else:
            expected = TwoBitState.CLEAN_MANY
        if states.get(block, not_cached) is not expected:
            return None
    return {"mask": mask, "owner": owner}


def _loop_dir0b(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    context: Any,
    state: dict[str, Any],
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
) -> tuple[ProtocolResult | None, int, int]:
    mask = state["mask"]
    owner = state["owner"]
    instr_count, type_codes, sharer_col, addresses = trace.data_view(
        simulator.sharer_key
    )
    sharer_index = context.sharer_index
    sharer_lookup = sharer_index.get
    seen = context.seen_blocks
    seen_add = seen.add
    shift = simulator.block_mapper.offset_bits
    limit = protocol.num_caches
    mask_get = mask.get
    wh_cln = _D0_WH_CLN.get
    wm_cln = _D0_WM_CLN.get
    read = TYPE_READ
    pending_get = pending.get

    for code, sharer, address in zip(type_codes, sharer_col, addresses):
        cache = sharer_lookup(sharer)
        if cache is None:
            cache = len(sharer_index)
            if cache >= limit:
                raise _too_many_sharers(limit, sharer)
            sharer_index[sharer] = cache
        block = address >> shift
        if block in seen:
            first = False
        else:
            first = True
            seen_add(block)
        bit = 1 << cache
        held = mask_get(block, 0)
        if code == read:
            if held & bit:
                outcome = RESULT_RD_HIT
            elif first:
                outcome = _RM_FIRST
                mask[block] = bit
            else:
                own = owner.pop(block, None)
                # A dirty owner writes back and keeps a clean copy.
                outcome = _D0_RM_CLN if own is None else _D0_RM_DRTY
                mask[block] = held | bit
        else:
            if held & bit:
                if block in owner:
                    # Sole-holder invariant: the owner is this cache.
                    outcome = RESULT_WH_BLK_DRTY
                else:
                    n_others = (held & ~bit).bit_count()
                    if n_others == 0:
                        outcome = _D0_WH_SOLE
                    else:
                        outcome = wh_cln(n_others) or _d0_wh_cln(n_others)
                    mask[block] = bit
                    owner[block] = cache
            else:
                if first:
                    outcome = _WM_FIRST
                elif block in owner:
                    del owner[block]
                    outcome = _D0_WM_DRTY
                elif held:
                    n_holders = held.bit_count()
                    outcome = wm_cln(n_holders) or _d0_wm_cln(n_holders)
                else:
                    outcome = _D0_WM_ALONE
                mask[block] = bit
                owner[block] = cache
        if outcome is previous:
            run_length += 1
        elif previous is None:
            previous = outcome
            run_length = 1
        else:
            entry = pending_get(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
            previous = outcome
            run_length = 1
    return previous, run_length, instr_count


def _export_dir0b(protocol: Any, state: dict[str, Any]) -> None:
    # Export: rebuild each cache's lines and the directory states from
    # the compact encoding (the exact inverse of the import mapping).
    mask = state["mask"]
    owner = state["owner"]
    new_lines: list[dict] = [{} for _ in protocol._caches]
    new_states: dict[int, TwoBitState] = {}
    clean = LineState.CLEAN
    for block, held in mask.items():
        own = owner.get(block)
        if own is not None:
            new_lines[own][block] = LineState.DIRTY
            new_states[block] = TwoBitState.DIRTY_ONE
        else:
            count = 0
            remaining = held
            while remaining:
                low = remaining & -remaining
                new_lines[low.bit_length() - 1][block] = clean
                remaining ^= low
                count += 1
            new_states[block] = (
                TwoBitState.CLEAN_ONE if count == 1 else TwoBitState.CLEAN_MANY
            )
    for cache, cache_lines in zip(protocol._caches, new_lines):
        cache._lines = cache_lines
    protocol._directory._states = new_states


# ----------------------------------------------------------------------
# dir1nb
# ----------------------------------------------------------------------


def _import_dir1nb(protocol: Any, context: Any) -> dict[str, Any] | None:
    directory = protocol._directory
    if (
        type(directory) is not LimitedPointerDirectory
        or directory.num_pointers != 1
        or directory.broadcast_bit
    ):
        return None
    lines = _infinite_lines(protocol)
    if lines is None:
        return None

    # Per block: (holder << 1) | dirty — the single-copy invariant.
    holders: dict[int, int] = {}
    for index, cache_lines in enumerate(lines):
        for block, state in cache_lines.items():
            if block in holders:
                return None  # two copies: outside the dir1nb model
            if state is LineState.DIRTY:
                holders[block] = (index << 1) | 1
            elif state is LineState.CLEAN:
                holders[block] = index << 1
            else:
                return None
    if not context.seen_blocks >= holders.keys():
        return None
    entries = directory._entries
    for block, stored in entries.items():
        if stored.broadcast:
            return None
        encoded = holders.get(block)
        if encoded is None:
            if stored.pointers or stored.dirty:
                return None
        elif stored.pointers != [encoded >> 1] or stored.dirty != bool(encoded & 1):
            return None
    for block in holders:
        if block not in entries:
            return None
    return {"holders": holders}


def _loop_dir1nb(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    context: Any,
    state: dict[str, Any],
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
) -> tuple[ProtocolResult | None, int, int]:
    holders = state["holders"]
    instr_count, type_codes, sharer_col, addresses = trace.data_view(
        simulator.sharer_key
    )
    sharer_index = context.sharer_index
    sharer_lookup = sharer_index.get
    seen = context.seen_blocks
    seen_add = seen.add
    shift = simulator.block_mapper.offset_bits
    limit = protocol.num_caches
    holders_get = holders.get
    read = TYPE_READ
    pending_get = pending.get

    for code, sharer, address in zip(type_codes, sharer_col, addresses):
        cache = sharer_lookup(sharer)
        if cache is None:
            cache = len(sharer_index)
            if cache >= limit:
                raise _too_many_sharers(limit, sharer)
            sharer_index[sharer] = cache
        block = address >> shift
        if block in seen:
            first = False
        else:
            first = True
            seen_add(block)
        encoded = holders_get(block)
        if code == read:
            if encoded is not None and encoded >> 1 == cache:
                outcome = RESULT_RD_HIT
            else:
                if first:
                    outcome = _RM_FIRST
                elif encoded is None:
                    outcome = _D1_RM_NOHOLDER
                elif encoded & 1:
                    outcome = _D1_RM_DRTY
                else:
                    outcome = _D1_RM_CLN
                holders[block] = cache << 1
        else:
            if encoded is not None and encoded >> 1 == cache:
                if encoded & 1:
                    outcome = RESULT_WH_BLK_DRTY
                else:
                    outcome = _D1_WH_CLN
                    holders[block] = encoded | 1
            else:
                if first:
                    outcome = _WM_FIRST
                elif encoded is None:
                    outcome = _D1_WM_NOHOLDER
                elif encoded & 1:
                    outcome = _D1_WM_DRTY
                else:
                    outcome = _D1_WM_CLN
                holders[block] = (cache << 1) | 1
        if outcome is previous:
            run_length += 1
        elif previous is None:
            previous = outcome
            run_length = 1
        else:
            entry = pending_get(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
            previous = outcome
            run_length = 1
    return previous, run_length, instr_count


def _export_dir1nb(protocol: Any, state: dict[str, Any]) -> None:
    holders = state["holders"]
    new_lines: list[dict] = [{} for _ in protocol._caches]
    new_entries: dict[int, _PointerEntry] = {}
    for block, encoded in holders.items():
        holder, dirty = encoded >> 1, bool(encoded & 1)
        new_lines[holder][block] = LineState.DIRTY if dirty else LineState.CLEAN
        new_entries[block] = _PointerEntry(dirty=dirty, pointers=[holder])
    for cache, cache_lines in zip(protocol._caches, new_lines):
        cache._lines = cache_lines
    protocol._directory._entries = new_entries


# ----------------------------------------------------------------------
# wti
# ----------------------------------------------------------------------


def _import_wti(protocol: Any, context: Any) -> dict[str, Any] | None:
    lines = _infinite_lines(protocol)
    if lines is None:
        return None
    mask: dict[int, int] = {}
    clean = LineState.CLEAN
    for index, cache_lines in enumerate(lines):
        bit = 1 << index
        for block, state in cache_lines.items():
            if state is not clean:
                return None  # write-through lines are never dirty
            mask[block] = mask.get(block, 0) | bit
    if not context.seen_blocks >= mask.keys():
        return None
    return {"mask": mask}


def _loop_wti(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    context: Any,
    state: dict[str, Any],
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
) -> tuple[ProtocolResult | None, int, int]:
    mask = state["mask"]
    instr_count, type_codes, sharer_col, addresses = trace.data_view(
        simulator.sharer_key
    )
    sharer_index = context.sharer_index
    sharer_lookup = sharer_index.get
    seen = context.seen_blocks
    seen_add = seen.add
    shift = simulator.block_mapper.offset_bits
    limit = protocol.num_caches
    mask_get = mask.get
    wt_wh = _WT_WH.get
    wt_wm = _WT_WM.get
    read = TYPE_READ
    pending_get = pending.get

    for code, sharer, address in zip(type_codes, sharer_col, addresses):
        cache = sharer_lookup(sharer)
        if cache is None:
            cache = len(sharer_index)
            if cache >= limit:
                raise _too_many_sharers(limit, sharer)
            sharer_index[sharer] = cache
        block = address >> shift
        if block in seen:
            first = False
        else:
            first = True
            seen_add(block)
        bit = 1 << cache
        held = mask_get(block, 0)
        if code == read:
            if held & bit:
                outcome = RESULT_RD_HIT
            else:
                outcome = _RM_FIRST if first else _WT_RM_CLN
                mask[block] = held | bit
        else:
            # Every write goes to the bus; snoopers drop their copies.
            n_others = (held & ~bit).bit_count()
            if held & bit:
                outcome = wt_wh(n_others) or _wt_wh(n_others)
            elif first:
                outcome = _WT_WM_FIRST
            else:
                outcome = wt_wm(n_others) or _wt_wm(n_others)
            mask[block] = bit
        if outcome is previous:
            run_length += 1
        elif previous is None:
            previous = outcome
            run_length = 1
        else:
            entry = pending_get(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
            previous = outcome
            run_length = 1
    return previous, run_length, instr_count


def _export_wti(protocol: Any, state: dict[str, Any]) -> None:
    mask = state["mask"]
    clean = LineState.CLEAN
    new_lines: list[dict] = [{} for _ in protocol._caches]
    for block, held in mask.items():
        remaining = held
        while remaining:
            low = remaining & -remaining
            new_lines[low.bit_length() - 1][block] = clean
            remaining ^= low
    for cache, cache_lines in zip(protocol._caches, new_lines):
        cache._lines = cache_lines


# ----------------------------------------------------------------------
# dragon
# ----------------------------------------------------------------------


def _import_dragon(protocol: Any, context: Any) -> dict[str, Any] | None:
    lines = _infinite_lines(protocol)
    if lines is None:
        return None
    mask: dict[int, int] = {}
    owner: dict[int, int] = {}
    for index, cache_lines in enumerate(lines):
        bit = 1 << index
        for block, state in cache_lines.items():
            mask[block] = mask.get(block, 0) | bit
            if state.is_owner:
                if block in owner:
                    return None
                owner[block] = index
    # Verify each block's line states are exactly the derived encoding.
    ve = DragonLineState.VALID_EXCLUSIVE
    dirty = DragonLineState.DIRTY
    sc = DragonLineState.SHARED_CLEAN
    sd = DragonLineState.SHARED_DIRTY
    for block, held in mask.items():
        own = owner.get(block)
        if held & (held - 1) == 0:
            state = lines[held.bit_length() - 1][block]
            if state is not (ve if own is None else dirty):
                return None
        else:
            remaining = held
            while remaining:
                low = remaining & -remaining
                index = low.bit_length() - 1
                if lines[index][block] is not (sd if index == own else sc):
                    return None
                remaining ^= low
    if not context.seen_blocks >= mask.keys():
        return None
    return {"mask": mask, "owner": owner}


def _loop_dragon(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    context: Any,
    state: dict[str, Any],
    pending: dict[int, list],
    previous: ProtocolResult | None,
    run_length: int,
) -> tuple[ProtocolResult | None, int, int]:
    mask = state["mask"]
    owner = state["owner"]
    instr_count, type_codes, sharer_col, addresses = trace.data_view(
        simulator.sharer_key
    )
    sharer_index = context.sharer_index
    sharer_lookup = sharer_index.get
    seen = context.seen_blocks
    seen_add = seen.add
    shift = simulator.block_mapper.offset_bits
    limit = protocol.num_caches
    mask_get = mask.get
    read = TYPE_READ
    pending_get = pending.get

    for code, sharer, address in zip(type_codes, sharer_col, addresses):
        cache = sharer_lookup(sharer)
        if cache is None:
            cache = len(sharer_index)
            if cache >= limit:
                raise _too_many_sharers(limit, sharer)
            sharer_index[sharer] = cache
        block = address >> shift
        if block in seen:
            first = False
        else:
            first = True
            seen_add(block)
        bit = 1 << cache
        held = mask_get(block, 0)
        if code == read:
            if held & bit:
                outcome = RESULT_RD_HIT
            elif first:
                outcome = _RM_FIRST
                mask[block] = bit
            else:
                if block in owner:
                    # The owner supplies the block and stays owner
                    # (DIRTY demotes to SHARED_DIRTY, still owning).
                    outcome = _DG_RM_DRTY
                else:
                    outcome = _DG_RM_CLN
                mask[block] = held | bit
        else:
            if held & bit:
                if held == bit:
                    outcome = RESULT_WH_LOCAL
                else:
                    # Update broadcast: the writer takes ownership, a
                    # previous owner demotes to SHARED_CLEAN.
                    outcome = RESULT_WH_DISTRIB
                owner[block] = cache
            else:
                if first:
                    outcome = _WM_FIRST
                    mask[block] = bit
                elif block in owner:
                    outcome = _DG_WM_DRTY
                    mask[block] = held | bit
                elif held:
                    outcome = _DG_WM_CLN
                    mask[block] = held | bit
                else:
                    outcome = _DG_WM_ALONE
                    mask[block] = bit
                owner[block] = cache
        if outcome is previous:
            run_length += 1
        elif previous is None:
            previous = outcome
            run_length = 1
        else:
            entry = pending_get(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
            previous = outcome
            run_length = 1
    return previous, run_length, instr_count


def _export_dragon(protocol: Any, state: dict[str, Any]) -> None:
    mask = state["mask"]
    owner = state["owner"]
    ve = DragonLineState.VALID_EXCLUSIVE
    dirty = DragonLineState.DIRTY
    sc = DragonLineState.SHARED_CLEAN
    sd = DragonLineState.SHARED_DIRTY
    new_lines: list[dict] = [{} for _ in protocol._caches]
    for block, held in mask.items():
        own = owner.get(block)
        if held & (held - 1) == 0:
            index = held.bit_length() - 1
            new_lines[index][block] = ve if own is None else dirty
        else:
            remaining = held
            while remaining:
                low = remaining & -remaining
                index = low.bit_length() - 1
                new_lines[index][block] = sd if index == own else sc
                remaining ^= low
    for cache, cache_lines in zip(protocol._caches, new_lines):
        cache._lines = cache_lines


# ----------------------------------------------------------------------
# Sessions and dispatch
# ----------------------------------------------------------------------

#: Exact protocol type -> (importer, loop, exporter).  Keyed by type
#: identity on purpose: subclasses (and wrappers) take the generic
#: object-model path.
_KERNELS: dict[type, tuple[Callable, Callable, Callable]] = {
    Dir0BProtocol: (_import_dir0b, _loop_dir0b, _export_dir0b),
    Dir1NBProtocol: (_import_dir1nb, _loop_dir1nb, _export_dir1nb),
    WTIProtocol: (_import_wti, _loop_wti, _export_wti),
    DragonProtocol: (_import_dragon, _loop_dragon, _export_dragon),
}


class KernelSession:
    """One kernel run kept open across a sequence of columnar chunks.

    Created by :func:`open_kernel_session` after a successful state
    import.  Between :meth:`run_chunk` calls the protocol's state lives
    only in the compact encoding (interned per-block sharer bitmasks
    and owner ids) — the object model is reconstructed exactly once, at
    :meth:`finish`.  Identity-run batching spans chunk boundaries, so
    the accumulated result is bit-identical to one continuous
    :func:`kernel_run` over the concatenated trace.
    """

    __slots__ = (
        "_simulator", "_protocol", "_result", "_context", "_state",
        "_loop", "_export", "_pending", "_previous", "_run_length",
        "_instr_count", "_records", "_finished",
    )

    def __init__(
        self,
        simulator: Any,
        protocol: Any,
        result: Any,
        context: Any,
        state: dict[str, Any],
        loop: Callable,
        export: Callable,
    ) -> None:
        self._simulator = simulator
        self._protocol = protocol
        self._result = result
        self._context = context
        self._state = state
        self._loop = loop
        self._export = export
        self._pending: dict[int, list] = {}
        self._previous: ProtocolResult | None = None
        self._run_length = 0
        self._instr_count = 0
        self._records = 0
        self._finished = False

    def run_chunk(self, chunk: ColumnarTrace) -> None:
        """Run one columnar chunk through the hot loop."""
        if self._finished:
            raise RuntimeError("kernel session already finished")
        self._previous, self._run_length, instr = self._loop(
            self._simulator,
            chunk,
            self._protocol,
            self._context,
            self._state,
            self._pending,
            self._previous,
            self._run_length,
        )
        self._instr_count += instr
        self._records += len(chunk)

    def finish(self) -> Any:
        """Export the compact state back and return the result.

        After this the protocol's caches/directory are exactly as the
        object model would have left them; the session is closed.
        """
        if self._finished:
            return self._result
        self._finished = True
        self._export(self._protocol, self._state)
        _flush_batches(
            self._result,
            self._pending,
            self._previous,
            self._run_length,
            self._instr_count,
        )
        self._context.records_done += self._records
        return self._result


def has_kernel(protocol: Any) -> bool:
    """True if *protocol*'s exact type has a table-driven kernel."""
    return type(protocol) in _KERNELS


def open_kernel_session(
    simulator: Any, protocol: Any, result: Any, context: Any
) -> KernelSession | None:
    """Import *protocol*'s live state and open a chunk-streaming session.

    Returns None (protocol and context untouched) when no kernel exists
    for the protocol's exact type or the live state fails an import
    invariant — the caller then falls back to the generic columnar loop
    for every chunk.
    """
    triple = _KERNELS.get(type(protocol))
    if triple is None:
        return None
    importer, loop, export = triple
    state = importer(protocol, context)
    if state is None:
        return None
    return KernelSession(simulator, protocol, result, context, state, loop, export)


def kernel_run(
    simulator: Any,
    trace: ColumnarTrace,
    protocol: Any,
    result: Any,
    context: Any,
) -> Any | None:
    """Run *trace* through a state-table kernel if one safely applies.

    Returns the completed result, or None when no kernel exists for the
    protocol's exact type or the live state fails an import invariant —
    the caller then falls back to the generic columnar loop.  A None
    return guarantees the protocol and context are untouched.
    """
    session = open_kernel_session(simulator, protocol, result, context)
    if session is None:
        return None
    session.run_chunk(trace)
    return session.finish()
