"""Protocol registry: build any evaluated scheme by name.

Names accepted by :func:`make_protocol`:

* ``"dir1nb"`` — single pointer, no broadcast
* ``"dir0b"`` — Archibald–Baer two-bit, broadcast
* ``"dirnnb"`` — Censier–Feautrier full map, sequential invalidates
* ``"dirib"`` — limited pointers + broadcast bit (``num_pointers=i``)
* ``"dirinb"`` — limited pointers, pointer eviction (``num_pointers=i``)
* ``"coarse-vector"`` — Section 6 ternary-coded directory
* ``"yenfu"`` — Yen & Fu single-bit refinement of the full map
* ``"wti"`` — write-through with invalidate
* ``"dragon"`` — Dragon update protocol
* ``"write-once"`` — Goodman write-once snoopy protocol
* ``"illinois"`` — Illinois/MESI with cache-to-cache supply
* ``"adaptive"`` — competitive update/invalidate hybrid (extension)
* ``"berkeley"`` — Berkeley Ownership (Dir0B events, free directory)

Shorthand forms like ``"dir2b"`` / ``"dir4nb"`` select the
limited-pointer schemes with the embedded pointer count (``"dir1nb"``
remains the paper's dedicated single-copy scheme).
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import ConfigurationError, UnknownSchemeError
from repro.memory.geometry import parse_geometry
from repro.protocols.base import CoherenceProtocol, DirectoryProtocol
from repro.protocols.directory.coarse import CoarseVectorProtocol
from repro.protocols.directory.dir0b import Dir0BProtocol
from repro.protocols.directory.dir1nb import Dir1NBProtocol
from repro.protocols.directory.diri import DirIBProtocol, DirINBProtocol
from repro.protocols.directory.dirnnb import DirNNBProtocol
from repro.protocols.directory.yenfu import YenFuProtocol
from repro.protocols.snoopy.berkeley import BerkeleyProtocol
from repro.protocols.snoopy.dragon import DragonProtocol
from repro.protocols.snoopy.adaptive import AdaptiveProtocol
from repro.protocols.snoopy.illinois import IllinoisProtocol
from repro.protocols.snoopy.writeonce import WriteOnceProtocol
from repro.protocols.snoopy.wti import WTIProtocol

_REGISTRY: dict[str, type[CoherenceProtocol]] = {
    "dir1nb": Dir1NBProtocol,
    "dir0b": Dir0BProtocol,
    "dirnnb": DirNNBProtocol,
    "dirib": DirIBProtocol,
    "dirinb": DirINBProtocol,
    "coarse-vector": CoarseVectorProtocol,
    "yenfu": YenFuProtocol,
    "wti": WTIProtocol,
    "dragon": DragonProtocol,
    "write-once": WriteOnceProtocol,
    "illinois": IllinoisProtocol,
    "adaptive": AdaptiveProtocol,
    "berkeley": BerkeleyProtocol,
}

_POINTER_SHORTHAND = re.compile(r"^dir(\d+)(b|nb)$")


def available_protocols() -> list[str]:
    """Sorted list of canonical registry names."""
    return sorted(_REGISTRY)


def protocol_class(name: str) -> type[CoherenceProtocol]:
    """Resolve a canonical protocol name to its class."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSchemeError(
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        ) from None


def make_protocol(name: str, num_caches: int, **options: Any) -> CoherenceProtocol:
    """Instantiate a protocol by (possibly shorthand) name.

    Args:
        name: a registry name or a ``dir<i>b`` / ``dir<i>nb`` shorthand.
        num_caches: number of caches in the simulated machine.
        options: forwarded to the protocol constructor (e.g.
            ``num_pointers`` for the limited-pointer schemes,
            ``cache_factory`` to swap in finite caches).  A ``geometry``
            option (any :func:`~repro.memory.geometry.parse_geometry`
            spelling) expands to a finite ``cache_factory`` plus, for
            directory schemes, a ``dir_capacity`` bound.
    """
    key = name.lower()
    match = _POINTER_SHORTHAND.match(key)
    if match and key not in _REGISTRY and key != "dir0b":
        pointers = int(match.group(1))
        if pointers < 1:
            raise UnknownSchemeError(f"{name!r}: pointer count must be >= 1")
        variant = "dirib" if match.group(2) == "b" else "dirinb"
        options.setdefault("num_pointers", pointers)
        cls = _REGISTRY[variant]
    else:
        cls = protocol_class(key)
    geometry_spec = options.pop("geometry", None)
    if geometry_spec is not None:
        geometry = parse_geometry(geometry_spec)
        options.setdefault("cache_factory", geometry)
        if geometry.dir_entries is not None:
            if not issubclass(cls, DirectoryProtocol):
                raise ConfigurationError(
                    f"{name!r} has no directory; geometry "
                    f"{geometry.canonical()!r} cannot bound directory entries"
                )
            options.setdefault("dir_capacity", geometry.dir_entries)
    return cls(num_caches, **options)
