"""Cache-coherence protocol state machines.

Each protocol consumes one data reference at a time and returns a
:class:`~repro.protocols.events.ProtocolResult`: the paper's Table-4
event classification for that reference plus the abstract bus
operations the transaction performs.  Event counting is thereby fully
decoupled from bus-cycle costs, exactly as in the paper's methodology
(Section 4.1).
"""

from repro.protocols.events import (
    EventType,
    OpKind,
    BusOp,
    ProtocolResult,
    mem_access,
    cache_access,
    write_back,
    write_word,
    dir_check,
    dir_check_overlapped,
    invalidate,
    broadcast_invalidate,
)
from repro.protocols.base import CoherenceProtocol, SnoopyProtocol, DirectoryProtocol
from repro.protocols.registry import (
    available_protocols,
    make_protocol,
    protocol_class,
)

__all__ = [
    "EventType",
    "OpKind",
    "BusOp",
    "ProtocolResult",
    "mem_access",
    "cache_access",
    "write_back",
    "write_word",
    "dir_check",
    "dir_check_overlapped",
    "invalidate",
    "broadcast_invalidate",
    "CoherenceProtocol",
    "SnoopyProtocol",
    "DirectoryProtocol",
    "available_protocols",
    "make_protocol",
    "protocol_class",
]
