"""A competitive update/invalidate hybrid (extension beyond the paper).

The paper's evaluation poses update (Dragon) against invalidation
protocols and shows each wins on different sharing patterns: updates
are unbeatable for producer/consumer and false sharing, invalidation
for migratory data.  The natural follow-on — explored in the years
after the paper (competitive snooping, Karlin et al.; adaptive
update/invalidate, Cox & Fowler) — is a protocol that *switches*:

start as Dragon, but let each cache count the updates it has received
for a line since it last read it.  After ``update_limit`` consecutive
unused updates the cache drops its copy (a free, purely local
decision).  Read-mostly data keeps the update behaviour; migratory data
degenerates to exclusive ownership and writes become local.

Implemented here as ``"adaptive"``: Dragon's state machine plus
per-line dead-update counters.
"""

from __future__ import annotations

from repro.memory.cache import InfiniteCache
from repro.memory.line import DragonLineState
from repro.protocols.snoopy.dragon import DragonProtocol
from repro.protocols.events import EventType, ProtocolResult


class AdaptiveProtocol(DragonProtocol):
    """Dragon with competitive self-invalidation of unused copies."""

    name = "adaptive"
    # Self-invalidation makes this no longer a pure update protocol:
    # copies can disappear, so the dirty-exclusivity relaxation still
    # applies (owner + stale-counter copies coexist legally).
    update_based = True

    def __init__(
        self,
        num_caches: int,
        update_limit: int = 4,
        cache_factory=InfiniteCache,
    ) -> None:
        if update_limit < 1:
            raise ValueError(f"update_limit must be >= 1, got {update_limit}")
        super().__init__(num_caches, cache_factory=cache_factory)
        self.update_limit = update_limit
        # (cache, block) -> updates received since that cache's last read.
        self._dead_updates: dict[tuple[int, int], int] = {}

    def _note_local_use(self, cache: int, block: int) -> None:
        self._dead_updates.pop((cache, block), None)

    def _count_update(self, cache: int, block: int) -> bool:
        """Count one received update; True if the copy should be dropped."""
        key = (cache, block)
        count = self._dead_updates.get(key, 0) + 1
        if count >= self.update_limit:
            self._dead_updates.pop(key, None)
            return True
        self._dead_updates[key] = count
        return False

    def on_read(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data read; see :meth:`CoherenceProtocol.on_read`."""
        result = super().on_read(cache, block, first_ref)
        self._note_local_use(cache, block)
        return result

    def on_write(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data write; see :meth:`CoherenceProtocol.on_write`."""
        result = super().on_write(cache, block, first_ref)
        self._note_local_use(cache, block)
        if result.event in (
            EventType.WH_DISTRIB,
            EventType.WM_BLK_CLN,
            EventType.WM_BLK_DRTY,
        ):
            # The distributed update reached every other holder; each
            # may competitively drop its copy (free local decision).
            for other in self._other_holders(block, cache):
                if self._count_update(other, block):
                    self._caches[other].evict(block)
            # If everyone dropped out, the writer owns the block alone.
            if not self._other_holders(block, cache):
                self._caches[cache].put(block, DragonLineState.DIRTY)
        return result
