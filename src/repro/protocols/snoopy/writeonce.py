"""Goodman's Write-Once protocol (the paper's reference [2]).

The original snoopy copy-back scheme, included as an extension
comparator between WTI and the copy-back invalidation protocols.  Line
states:

* ``VALID`` — clean, possibly shared, memory current;
* ``RESERVED`` — written through exactly once: memory still current,
  guaranteed the only cached copy;
* ``DIRTY`` — written locally more than once: memory stale, exclusive.

The "write-once" trick: the **first** write to a valid block is written
through (one bus word, which also invalidates other copies via
snooping) and the line becomes RESERVED; subsequent writes stay local
(RESERVED -> DIRTY).  Reads that miss are served by memory unless a
DIRTY copy exists, in which case that cache supplies the block and
memory is updated.
"""

from __future__ import annotations

import enum

from repro.memory.cache import InfiniteCache
from repro.protocols.base import SnoopyProtocol
from repro.protocols.events import (
    RESULT_RD_HIT,
    RESULT_WH_BLK_DRTY,
    EventType,
    ProtocolResult,
    mem_access,
    write_back,
    write_word,
)


class WriteOnceState(enum.Enum):
    """Write-once line states (INVALID is represented by absence)."""

    VALID = "valid"
    RESERVED = "reserved"
    DIRTY = "dirty"

    @property
    def is_dirty(self) -> bool:
        """Memory is stale only for DIRTY (RESERVED wrote through)."""
        return self is WriteOnceState.DIRTY

    @property
    def is_exclusive(self) -> bool:
        """RESERVED and DIRTY lines are guaranteed sole copies."""
        return self is not WriteOnceState.VALID


class WriteOnceProtocol(SnoopyProtocol):
    """Goodman's write-once snoopy protocol."""

    name = "write-once"

    def __init__(self, num_caches: int, cache_factory=InfiniteCache) -> None:
        super().__init__(num_caches, cache_factory=cache_factory)

    def _other_holders(self, block: int, cache: int) -> list[int]:
        return [
            index
            for index, other in enumerate(self._caches)
            if index != cache and other.get(block) is not None
        ]

    def _dirty_owner(self, block: int) -> int | None:
        for index, other in enumerate(self._caches):
            if other.get(block) is WriteOnceState.DIRTY:
                return index
        return None

    def _install(self, cache: int, block: int, state: WriteOnceState, ops: list) -> None:
        victim = self._caches[cache].put(block, state)
        if victim is not None:
            victim_block, victim_state = victim
            if victim_state is WriteOnceState.DIRTY:
                ops.append(write_back())

    def on_read(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data read; see :meth:`CoherenceProtocol.on_read`."""
        self._check_cache_index(cache)
        if self._caches[cache].get(block) is not None:
            self._caches[cache].touch(block)
            return RESULT_RD_HIT

        ops: list = []
        if first_ref:
            self._install(cache, block, WriteOnceState.VALID, ops)
            return ProtocolResult(EventType.RM_FIRST_REF, tuple(ops))

        owner = self._dirty_owner(block)
        if owner is not None:
            event = EventType.RM_BLK_DRTY
            # The dirty cache supplies the block and memory is updated
            # during the same transfer; the owner's line becomes VALID.
            ops.append(write_back())
            self._caches[owner].put(block, WriteOnceState.VALID)
        else:
            event = EventType.RM_BLK_CLN
            ops.append(mem_access())
            # A RESERVED holder observed the snooped read: it is no
            # longer the sole copy and demotes to VALID.
            for other in self._other_holders(block, cache):
                if self._caches[other].get(block) is WriteOnceState.RESERVED:
                    self._caches[other].put(block, WriteOnceState.VALID)
        self._install(cache, block, WriteOnceState.VALID, ops)
        return ProtocolResult(event, tuple(ops))

    def on_write(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data write; see :meth:`CoherenceProtocol.on_write`."""
        self._check_cache_index(cache)
        line = self._caches[cache].get(block)

        if line is WriteOnceState.DIRTY:
            self._caches[cache].touch(block)
            return RESULT_WH_BLK_DRTY
        if line is WriteOnceState.RESERVED:
            # Second write: purely local, the line becomes dirty.
            self._caches[cache].put(block, WriteOnceState.DIRTY)
            return RESULT_WH_BLK_DRTY
        if line is WriteOnceState.VALID:
            # The write-once: write the word through to memory; every
            # snooping cache invalidates its copy for free.
            others = self._other_holders(block, cache)
            for other in others:
                self._caches[other].evict(block)
            self._caches[cache].put(block, WriteOnceState.RESERVED)
            return ProtocolResult(
                EventType.WH_BLK_CLN,
                (write_word(),),
                clean_write_sharers=len(others),
            )

        # Write miss: fetch the block with intent to modify; other
        # copies are invalidated via snooping during the fetch.
        ops: list = []
        if first_ref:
            self._install(cache, block, WriteOnceState.DIRTY, ops)
            return ProtocolResult(EventType.WM_FIRST_REF, tuple(ops))

        owner = self._dirty_owner(block)
        others = self._other_holders(block, cache)
        if owner is not None:
            event = EventType.WM_BLK_DRTY
            ops.append(write_back())
        else:
            event = EventType.WM_BLK_CLN
            ops.append(mem_access())
        for other in others:
            self._caches[other].evict(block)
        self._install(cache, block, WriteOnceState.DIRTY, ops)
        return ProtocolResult(
            event,
            tuple(ops),
            clean_write_sharers=None if owner is not None else len(others),
        )
