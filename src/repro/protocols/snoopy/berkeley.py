"""The Berkeley Ownership protocol, estimated as the paper does (§5).

The paper derives Berkeley's performance from the ``Dir0B`` event
frequencies: both use the same data state-change model, but Berkeley is
a snoopy scheme, so the information a directory probe would provide
comes for free from the block's state in the cache — the cost model is
the ``Dir0B`` model with the directory access cost set to zero.
Berkeley additionally supplies dirty blocks cache-to-cache via its
shared-dirty ownership state; the paper notes this "does not impact our
performance metric in the pipelined bus", and we keep the write-back
transfer cost accordingly.

Implementation: a subclass of :class:`Dir0BProtocol` whose standalone
directory probes become zero-cost (snooped) checks.  Event frequencies
are identical to ``Dir0B`` by construction, matching the paper's
methodology exactly.
"""

from __future__ import annotations

from repro.memory.cache import InfiniteCache
from repro.protocols.directory.dir0b import Dir0BProtocol
from repro.protocols.events import OpKind, ProtocolResult, dir_check_overlapped


class BerkeleyProtocol(Dir0BProtocol):
    """Berkeley Ownership, modelled as Dir0B with free directory checks."""

    name = "berkeley"
    scheme_kind = "snoopy"

    def __init__(
        self,
        num_caches: int,
        cache_factory=InfiniteCache,
        dir_capacity: int | None = None,
    ) -> None:
        super().__init__(
            num_caches, cache_factory=cache_factory, dir_capacity=dir_capacity
        )

    @staticmethod
    def _strip_dir_checks(result: ProtocolResult) -> ProtocolResult:
        """Replace standalone directory probes with zero-cost snoops."""
        if not any(op.kind is OpKind.DIR_CHECK for op in result.ops):
            return result
        ops = tuple(
            dir_check_overlapped() if op.kind is OpKind.DIR_CHECK else op
            for op in result.ops
        )
        return ProtocolResult(
            result.event,
            ops,
            clean_write_sharers=result.clean_write_sharers,
            wasted_invalidations=result.wasted_invalidations,
            pointer_evictions=result.pointer_evictions,
            directory_recalls=result.directory_recalls,
        )

    def on_read(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data read; see :meth:`CoherenceProtocol.on_read`."""
        return self._strip_dir_checks(super().on_read(cache, block, first_ref))

    def on_write(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data write; see :meth:`CoherenceProtocol.on_write`."""
        return self._strip_dir_checks(super().on_write(cache, block, first_ref))
