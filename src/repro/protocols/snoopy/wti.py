"""Write-Through-With-Invalidate (WTI), Section 3.

The simplest snoopy protocol: every write is transmitted to main
memory (write-through), other caches snoop the bus and invalidate
matching blocks, and memory is therefore always current.  The paper
includes it as the low-performance/low-complexity snoopy extreme.

Its data state-change model is the same multiple-clean-copies model as
``Dir0B`` (the paper notes their event frequencies are identical); the
cost difference comes from the write-through policy.  Snoop-induced
invalidations ride on the write-through bus cycle, so they add no bus
cost of their own.
"""

from __future__ import annotations

from repro.memory.cache import InfiniteCache
from repro.memory.line import LineState
from repro.protocols.base import SnoopyProtocol
from repro.protocols.events import (
    RESULT_RD_HIT,
    EventType,
    ProtocolResult,
    mem_access,
    write_word,
)


class WTIProtocol(SnoopyProtocol):
    """Write-through cache with bus-snooped invalidation."""

    name = "wti"
    writes_through = True

    def __init__(self, num_caches: int, cache_factory=InfiniteCache) -> None:
        super().__init__(num_caches, cache_factory=cache_factory)

    def _other_holders(self, block: int, cache: int) -> list[int]:
        return [
            index
            for index, other in enumerate(self._caches)
            if index != cache and other.get(block) is not None
        ]

    def _install(self, cache: int, block: int, ops: list) -> None:
        victim = self._caches[cache].put(block, LineState.CLEAN)
        if victim is not None:
            # Write-through caches never hold dirty data, so finite-cache
            # victims are dropped silently.
            pass

    def on_read(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data read; see :meth:`CoherenceProtocol.on_read`."""
        self._check_cache_index(cache)
        if self._caches[cache].get(block) is not None:
            self._caches[cache].touch(block)
            return RESULT_RD_HIT
        ops: list = []
        if first_ref:
            event = EventType.RM_FIRST_REF
        else:
            # Memory is always current under write-through, so every
            # miss is served by memory regardless of other copies.
            event = EventType.RM_BLK_CLN
            ops.append(mem_access())
        self._install(cache, block, ops)
        return ProtocolResult(event, tuple(ops))

    def on_write(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data write; see :meth:`CoherenceProtocol.on_write`."""
        self._check_cache_index(cache)
        others = self._other_holders(block, cache)
        # Every write goes to memory; snooping caches invalidate their
        # copies for free during the same bus cycle.
        ops: list = [write_word()]
        for other in others:
            self._caches[other].evict(block)

        line = self._caches[cache].get(block)
        if line is not None:
            self._caches[cache].touch(block)
            return ProtocolResult(
                EventType.WH_BLK_CLN, tuple(ops), clean_write_sharers=len(others)
            )
        if first_ref:
            event = EventType.WM_FIRST_REF
        else:
            # Allocate on write miss (the Dir0B state-change model): the
            # block is fetched from (always-current) memory.
            event = EventType.WM_BLK_CLN
            ops.append(mem_access())
        self._install(cache, block, ops)
        return ProtocolResult(
            event,
            tuple(ops),
            clean_write_sharers=None if first_ref else len(others),
        )
