"""Snoopy (bus-based) coherence protocols used as comparison points."""

from repro.protocols.snoopy.wti import WTIProtocol
from repro.protocols.snoopy.dragon import DragonProtocol
from repro.protocols.snoopy.berkeley import BerkeleyProtocol
from repro.protocols.snoopy.writeonce import WriteOnceProtocol, WriteOnceState
from repro.protocols.snoopy.illinois import IllinoisProtocol, MESIState
from repro.protocols.snoopy.adaptive import AdaptiveProtocol

__all__ = [
    "WTIProtocol",
    "DragonProtocol",
    "BerkeleyProtocol",
    "WriteOnceProtocol",
    "WriteOnceState",
    "IllinoisProtocol",
    "MESIState",
    "AdaptiveProtocol",
]
