"""The Dragon update protocol (Section 3) [McCreight 84].

Dragon maintains coherence by **updating** stale copies rather than
invalidating them: writes to shared blocks broadcast the new word on
the bus and every holder updates in place.  A special "shared" bus line
tells a writer whether any other cache holds the block, so writes to
unshared blocks stay local.  Under infinite caches a block, once
loaded, remains in the cache forever — Dragon's misses are the *native*
miss rate, and its bus traffic is dominated by write updates
(``wh-distrib``).  The paper treats Dragon as the best-performing
snoopy scheme.
"""

from __future__ import annotations

from repro.memory.cache import InfiniteCache
from repro.memory.line import DragonLineState
from repro.protocols.base import SnoopyProtocol
from repro.protocols.events import (
    RESULT_RD_HIT,
    RESULT_WH_DISTRIB,
    RESULT_WH_LOCAL,
    EventType,
    ProtocolResult,
    cache_access,
    mem_access,
    write_back,
    write_word,
)


class DragonProtocol(SnoopyProtocol):
    """Four-state Dragon write-update snoopy protocol."""

    name = "dragon"
    update_based = True

    def __init__(self, num_caches: int, cache_factory=InfiniteCache) -> None:
        super().__init__(num_caches, cache_factory=cache_factory)

    def _other_holders(self, block: int, cache: int) -> list[int]:
        return [
            index
            for index, other in enumerate(self._caches)
            if index != cache and other.get(block) is not None
        ]

    def _owner_of(self, block: int) -> int | None:
        """The cache responsible for supplying *block* (dirty owner)."""
        for index, cache in enumerate(self._caches):
            state = cache.get(block)
            if state is not None and state.is_owner:
                return index
        return None

    def _demote_to_shared(self, holders: list[int], block: int) -> None:
        """Mark existing holders shared when a new cache joins."""
        for holder in holders:
            state = self._caches[holder].get(block)
            if state is DragonLineState.VALID_EXCLUSIVE:
                self._caches[holder].put(block, DragonLineState.SHARED_CLEAN)
            elif state is DragonLineState.DIRTY:
                self._caches[holder].put(block, DragonLineState.SHARED_DIRTY)

    def _install(self, cache: int, block: int, state: DragonLineState, ops: list) -> None:
        victim = self._caches[cache].put(block, state)
        if victim is not None:
            victim_block, victim_state = victim
            if victim_state.is_owner:
                # Finite-cache extension: the owner flushes the dirty
                # line to memory on replacement.
                ops.append(write_back())

    def on_read(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data read; see :meth:`CoherenceProtocol.on_read`."""
        self._check_cache_index(cache)
        if self._caches[cache].get(block) is not None:
            self._caches[cache].touch(block)
            return RESULT_RD_HIT

        ops: list = []
        if first_ref:
            self._install(cache, block, DragonLineState.VALID_EXCLUSIVE, ops)
            return ProtocolResult(EventType.RM_FIRST_REF, tuple(ops))

        holders = self._other_holders(block, cache)
        owner = self._owner_of(block)
        if owner is not None:
            # The owning cache supplies the block directly.
            event = EventType.RM_BLK_DRTY
            ops.append(cache_access())
        elif holders:
            event = EventType.RM_BLK_CLN
            ops.append(mem_access())
        else:
            # Only reachable with finite caches (no invalidations exist
            # to empty all copies under infinite caches).
            event = EventType.RM_BLK_CLN
            ops.append(mem_access())
            self._install(cache, block, DragonLineState.VALID_EXCLUSIVE, ops)
            return ProtocolResult(event, tuple(ops))
        self._demote_to_shared(holders, block)
        self._install(cache, block, DragonLineState.SHARED_CLEAN, ops)
        return ProtocolResult(event, tuple(ops))

    def on_write(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data write; see :meth:`CoherenceProtocol.on_write`."""
        self._check_cache_index(cache)
        line = self._caches[cache].get(block)
        if line is not None:
            self._caches[cache].touch(block)
            others = self._other_holders(block, cache)
            if not others:
                # The "shared" bus line is clear: the write stays local.
                self._caches[cache].put(block, DragonLineState.DIRTY)
                return RESULT_WH_LOCAL
            # Write update broadcast: other copies are refreshed in
            # place; this cache becomes the owner.
            for other in others:
                other_state = self._caches[other].get(block)
                if other_state is not None and other_state.is_owner:
                    self._caches[other].put(block, DragonLineState.SHARED_CLEAN)
            self._caches[cache].put(block, DragonLineState.SHARED_DIRTY)
            return RESULT_WH_DISTRIB

        ops: list = []
        if first_ref:
            self._install(cache, block, DragonLineState.DIRTY, ops)
            return ProtocolResult(EventType.WM_FIRST_REF, tuple(ops))

        holders = self._other_holders(block, cache)
        owner = self._owner_of(block)
        if owner is not None:
            event = EventType.WM_BLK_DRTY
            ops.append(cache_access())
            self._caches[owner].put(block, DragonLineState.SHARED_CLEAN)
        elif holders:
            event = EventType.WM_BLK_CLN
            ops.append(mem_access())
        else:
            event = EventType.WM_BLK_CLN
            ops.append(mem_access())
            self._install(cache, block, DragonLineState.DIRTY, ops)
            return ProtocolResult(event, tuple(ops))
        # The freshly written word is distributed to the other holders.
        ops.append(write_word())
        self._demote_to_shared(holders, block)
        self._install(cache, block, DragonLineState.SHARED_DIRTY, ops)
        return ProtocolResult(event, tuple(ops))
