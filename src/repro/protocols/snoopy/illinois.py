"""The Illinois protocol (Papamarcos & Patel — the paper's reference [5]).

The canonical MESI write-back invalidation snoopy protocol, added as an
extension comparator: it fixes WTI's write traffic and improves on
write-once with two ideas —

* an **exclusive-clean** state (E): a block fetched when no other cache
  holds it can later be written with *no* bus transaction at all;
* **cache-to-cache supply**: if any cache holds the block, it supplies
  the data instead of memory (a dirty owner also updates memory).

States: INVALID (absence), SHARED, EXCLUSIVE (clean, sole copy),
MODIFIED (dirty, sole copy).
"""

from __future__ import annotations

import enum

from repro.memory.cache import InfiniteCache
from repro.protocols.base import SnoopyProtocol
from repro.protocols.events import (
    RESULT_RD_HIT,
    RESULT_WH_BLK_DRTY,
    EventType,
    ProtocolResult,
    broadcast_invalidate,
    cache_access,
    mem_access,
    write_back,
)


class MESIState(enum.Enum):
    """Illinois/MESI line states (INVALID is represented by absence)."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"
    MODIFIED = "modified"

    @property
    def is_dirty(self) -> bool:
        """True when memory is stale with respect to this line."""
        return self is MESIState.MODIFIED

    @property
    def is_exclusive(self) -> bool:
        """True when this state guarantees the sole cached copy."""
        return self in (MESIState.EXCLUSIVE, MESIState.MODIFIED)


class IllinoisProtocol(SnoopyProtocol):
    """MESI with cache-to-cache supply of clean blocks."""

    name = "illinois"

    def __init__(self, num_caches: int, cache_factory=InfiniteCache) -> None:
        super().__init__(num_caches, cache_factory=cache_factory)

    def _other_holders(self, block: int, cache: int) -> list[int]:
        return [
            index
            for index, other in enumerate(self._caches)
            if index != cache and other.get(block) is not None
        ]

    def _owner_of(self, block: int) -> int | None:
        for index, other in enumerate(self._caches):
            if other.get(block) is MESIState.MODIFIED:
                return index
        return None

    def _install(self, cache: int, block: int, state: MESIState, ops: list) -> None:
        victim = self._caches[cache].put(block, state)
        if victim is not None:
            victim_block, victim_state = victim
            if victim_state is MESIState.MODIFIED:
                ops.append(write_back())

    def on_read(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data read; see :meth:`CoherenceProtocol.on_read`."""
        self._check_cache_index(cache)
        if self._caches[cache].get(block) is not None:
            self._caches[cache].touch(block)
            return RESULT_RD_HIT

        ops: list = []
        if first_ref:
            self._install(cache, block, MESIState.EXCLUSIVE, ops)
            return ProtocolResult(EventType.RM_FIRST_REF, tuple(ops))

        others = self._other_holders(block, cache)
        owner = self._owner_of(block)
        if owner is not None:
            event = EventType.RM_BLK_DRTY
            # The owner supplies the block and updates memory (Illinois
            # flushes on supply); both end up SHARED.
            ops.append(write_back())
            self._caches[owner].put(block, MESIState.SHARED)
        elif others:
            event = EventType.RM_BLK_CLN
            # Cache-to-cache supply of the clean block.
            ops.append(cache_access())
            for other in others:
                if self._caches[other].get(block) is MESIState.EXCLUSIVE:
                    self._caches[other].put(block, MESIState.SHARED)
        else:
            event = EventType.RM_BLK_CLN
            ops.append(mem_access())
            self._install(cache, block, MESIState.EXCLUSIVE, ops)
            return ProtocolResult(event, tuple(ops))
        self._install(cache, block, MESIState.SHARED, ops)
        return ProtocolResult(event, tuple(ops))

    def on_write(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data write; see :meth:`CoherenceProtocol.on_write`."""
        self._check_cache_index(cache)
        line = self._caches[cache].get(block)

        if line is MESIState.MODIFIED:
            self._caches[cache].touch(block)
            return RESULT_WH_BLK_DRTY
        if line is MESIState.EXCLUSIVE:
            # The E state's payoff: a silent upgrade.
            self._caches[cache].put(block, MESIState.MODIFIED)
            return RESULT_WH_BLK_DRTY
        if line is MESIState.SHARED:
            others = self._other_holders(block, cache)
            for other in others:
                self._caches[other].evict(block)
            self._caches[cache].put(block, MESIState.MODIFIED)
            return ProtocolResult(
                EventType.WH_BLK_CLN,
                (broadcast_invalidate(),),
                clean_write_sharers=len(others),
            )

        # Write miss: read-with-intent-to-modify.
        ops: list = []
        if first_ref:
            self._install(cache, block, MESIState.MODIFIED, ops)
            return ProtocolResult(EventType.WM_FIRST_REF, tuple(ops))

        others = self._other_holders(block, cache)
        owner = self._owner_of(block)
        if owner is not None:
            event = EventType.WM_BLK_DRTY
            ops.append(write_back())
        elif others:
            event = EventType.WM_BLK_CLN
            ops.append(cache_access())
        else:
            event = EventType.WM_BLK_CLN
            ops.append(mem_access())
        for other in others:
            self._caches[other].evict(block)
        self._install(cache, block, MESIState.MODIFIED, ops)
        return ProtocolResult(
            event,
            tuple(ops),
            clean_write_sharers=None if owner is not None else len(others),
        )
