"""ASCII renderings of the paper's figures (bar charts and histograms)."""

from __future__ import annotations

from typing import Mapping, Sequence


def _scaled(value: float, maximum: float, width: int) -> int:
    if maximum <= 0:
        return 0
    return max(0, round(width * value / maximum))


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    precision: int = 4,
) -> str:
    """Horizontal ASCII bar chart (Figures 2 and 5 style)."""
    if not values:
        return title
    maximum = max(values.values(), default=0.0)
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * _scaled(value, maximum, width)
        lines.append(f"{label.ljust(label_width)}  {value:.{precision}f}  {bar}")
    return "\n".join(lines)


def range_chart(
    ranges: Mapping[str, tuple[float, float]],
    title: str = "",
    width: int = 50,
    precision: int = 4,
) -> str:
    """Low/high range bars (Figure 2/3: pipelined vs non-pipelined bus)."""
    if not ranges:
        return title
    maximum = max(high for _low, high in ranges.values())
    label_width = max(len(label) for label in ranges)
    lines = [title] if title else []
    for label, (low, high) in ranges.items():
        low_end = _scaled(low, maximum, width)
        high_end = max(low_end, _scaled(high, maximum, width))
        bar = "#" * low_end + "=" * (high_end - low_end)
        lines.append(
            f"{label.ljust(label_width)}  "
            f"{low:.{precision}f}..{high:.{precision}f}  {bar}"
        )
    return "\n".join(lines)


def histogram_chart(
    buckets: Sequence[tuple[int, float]],
    title: str = "",
    width: int = 50,
) -> str:
    """Percentage histogram (Figure 1 style); values are percents."""
    lines = [title] if title else []
    maximum = max((percent for _k, percent in buckets), default=0.0)
    for k, percent in buckets:
        bar = "#" * _scaled(percent, maximum, width)
        lines.append(f"{k:>3d}  {percent:6.2f}%  {bar}")
    return "\n".join(lines)


def stacked_fraction_chart(
    fractions: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 50,
) -> str:
    """Figure 4 style: per-scheme 100%-stacked category bars.

    Each category is drawn with a distinct letter (first letter of the
    category name); a legend line is appended.
    """
    lines = [title] if title else []
    legend: dict[str, str] = {}
    label_width = max((len(label) for label in fractions), default=0)
    for scheme, categories in fractions.items():
        bar = ""
        for name, fraction in categories.items():
            letter = name.strip()[0].lower() if name.strip() else "?"
            legend.setdefault(letter, name)
            bar += letter * round(fraction * width)
        lines.append(f"{scheme.ljust(label_width)}  |{bar[:width].ljust(width)}|")
    if legend:
        lines.append(
            "legend: " + ", ".join(f"{letter}={name}" for letter, name in legend.items())
        )
    return "\n".join(lines)
