"""Render automatically derived protocol transition tables.

The tables come from exhaustive probing of the executable state
machines (:func:`repro.core.statespace.enumerate_transitions`), so they
are *provably complete* specifications of each protocol's observable
behaviour — the kind of table protocol papers print by hand.
"""

from __future__ import annotations

from repro.core.statespace import enumerate_transitions
from repro.report.tables import format_table


def _render_ops(ops: tuple[tuple[str, int], ...]) -> str:
    if not ops:
        return "(none)"
    parts = []
    for kind, count in ops:
        parts.append(kind if count == 1 else f"{kind} x{count}")
    return ", ".join(parts)


def transition_table_text(
    scheme: str, num_caches: int = 3, **protocol_options
) -> str:
    """The full transition table of one protocol as an ASCII table."""
    transitions = enumerate_transitions(scheme, num_caches, **protocol_options)
    rows = []
    for transition in transitions:
        rows.append(
            (
                transition.operation,
                "yes" if transition.first_ref else "no",
                transition.requester_state or "-",
                "+".join(transition.others) or "-",
                transition.event,
                transition.requester_after or "-",
                _render_ops(transition.ops),
            )
        )
    return format_table(
        ["op", "first", "mine", "others", "event", "mine after", "bus operations"],
        rows,
        title=(
            f"Derived transition table: {scheme} "
            f"({num_caches} caches, {len(rows)} distinct situations)"
        ),
    )
