"""``repro bench``: the repeatable performance harness.

``benchmarks/bench_throughput.py`` measures the hot paths under
pytest-benchmark; this module is the same measurement as a first-class
CLI verb with a durable history, so performance is tracked — not just
observed — across commits:

* **warmup + repeats** — every timing warms the code path first (JIT
  caches, warm worker pools, memoized data views), then keeps the best
  of N repeats, the standard defense against scheduler noise;
* **history** — each run appends one timestamped record to
  ``BENCH_history.jsonl`` (append-only JSON Lines, one run per line)
  and refreshes ``BENCH_throughput.json`` with the same shape the
  benchmark suite writes;
* **regression gate** — headline metrics are compared against a
  rolling baseline (the median of the last few history records); any
  metric more than ``threshold`` below its baseline fails the run,
  which is what CI hooks into;
* **scaling gate** — optionally require pooled ``--jobs 4`` throughput
  to meet ``--jobs 1``, guarding the parallel dispatch path against
  regressions that serial numbers cannot see.  The gate is core-aware:
  on a single-core box (where workers can only time-slice) it reports
  itself skipped rather than failing on physics.
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from statistics import median
from typing import Any, Callable, Sequence

DEFAULT_SCHEMES = ("dir1nb", "wti", "dir0b", "dragon")
DEFAULT_JOBS = (1, 2, 4)
DEFAULT_LENGTH = 60_000
DEFAULT_REPEATS = 3
DEFAULT_WARMUP = 1
DEFAULT_THRESHOLD = 0.10
DEFAULT_WINDOW = 5
DEFAULT_GEOMETRY = "1024x4"

#: Ceiling on finite-kernel slowdown vs the infinite kernels — the
#: finite kernels do strictly more work (LRU maintenance, victim
#: write-backs) but must stay on the same fast path.
FINITE_SLOWDOWN_LIMIT = 2.0

#: Record-path throughput of the seed revision (pre-fast-path) on the
#: reference container — the long-term "how far have we come" anchor
#: (mirrors benchmarks/bench_throughput.py).
SEED_RECORD_REFS_PER_SEC = {"dir0b": 443_121, "dragon": 347_795}

#: Pooled jobs=4 throughput before the shared-memory/batched dispatch
#: rework (pickle-per-cell dispatch); the parallel path's anchor.
SEED_POOLED_REFS_PER_SEC = 765_917


def _best_seconds(fn: Callable[[], Any], repeats: int, warmup: int) -> float:
    """Best wall-clock of *repeats* calls after *warmup* unmeasured ones."""
    for _ in range(max(0, warmup)):
        fn()
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------


def measure_schemes(
    trace: Any,
    schemes: Sequence[str],
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
) -> dict[str, dict[str, Any]]:
    """Serial columnar vs record-path throughput per scheme."""
    from repro.core.simulator import Simulator
    from repro.trace.columnar import ColumnarTrace

    simulator = Simulator()
    columnar = ColumnarTrace.from_trace(trace)
    columnar.data_view(simulator.sharer_key)
    refs = len(trace)
    report: dict[str, dict[str, Any]] = {}
    for scheme in schemes:
        assert simulator.run(columnar, scheme) == simulator.run(trace, scheme)
        record_s = _best_seconds(
            lambda s=scheme: simulator.run(trace, s), repeats, warmup
        )
        columnar_s = _best_seconds(
            lambda s=scheme: simulator.run(columnar, s), repeats, warmup
        )
        entry: dict[str, Any] = {
            "record_refs_per_sec": round(refs / record_s),
            "columnar_refs_per_sec": round(refs / columnar_s),
            "speedup_columnar_vs_record": round(record_s / columnar_s, 2),
        }
        seed = SEED_RECORD_REFS_PER_SEC.get(scheme)
        if seed is not None:
            entry["speedup_vs_seed_record"] = round((refs / columnar_s) / seed, 2)
        report[scheme] = entry
    return report


def measure_finite(
    trace: Any,
    schemes: Sequence[str],
    geometry: str = DEFAULT_GEOMETRY,
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
) -> dict[str, Any]:
    """Finite-kernel columnar throughput vs the infinite kernels.

    Runs each scheme's capacity-aware state-table kernel (LRU sets,
    replacement write-backs) against the same trace the infinite kernel
    measures, after asserting the columnar finite result matches the
    record path bit for bit.  ``slowdown_vs_infinite`` is the headline:
    the finite kernels are expected to stay within 2x of the infinite
    ones (they do strictly more work per reference).
    """
    from repro.core.simulator import Simulator
    from repro.trace.columnar import ColumnarTrace

    simulator = Simulator()
    columnar = ColumnarTrace.from_trace(trace)
    columnar.data_view(simulator.sharer_key)
    refs = len(trace)
    entries: dict[str, dict[str, Any]] = {}
    for scheme in schemes:
        assert simulator.run(columnar, scheme, geometry=geometry) == simulator.run(
            trace, scheme, geometry=geometry
        )
        finite_s = _best_seconds(
            lambda s=scheme: simulator.run(columnar, s, geometry=geometry),
            repeats,
            warmup,
        )
        infinite_s = _best_seconds(
            lambda s=scheme: simulator.run(columnar, s), repeats, warmup
        )
        entries[scheme] = {
            "finite_refs_per_sec": round(refs / finite_s),
            "infinite_refs_per_sec": round(refs / infinite_s),
            "slowdown_vs_infinite": round(finite_s / infinite_s, 2),
        }
    return {"geometry": geometry, "schemes": entries}


def measure_streaming(
    trace: Any,
    schemes: Sequence[str],
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
) -> dict[str, Any]:
    """Chunk-streamed ``.ctrc`` throughput vs the in-memory paths.

    Packs the trace into a temporary chunked store (several chunks, so
    chunk-boundary handling is on the measured path), verifies the
    streamed result is identical to the columnar one, then times the
    bounded-memory simulation.  ``peak_rss_mb`` is the process-lifetime
    high-water mark — advisory context here; the enforced RSS ceiling
    lives in ``tools/bigtrace_smoke.py`` where the subprocess starts
    clean.
    """
    import resource
    import tempfile

    from repro.core.simulator import Simulator
    from repro.store import ChunkedTrace, pack_trace

    simulator = Simulator()
    refs = len(trace)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench.ctrc"
        start = time.perf_counter()
        meta = pack_trace(trace, path, chunk_records=max(1024, refs // 8))
        pack_s = time.perf_counter() - start
        stored = sum(chunk["length"] for chunk in meta["chunks"])
        with ChunkedTrace(path) as chunked:
            entries: dict[str, dict[str, Any]] = {}
            for scheme in schemes:
                assert simulator.run(chunked, scheme) == simulator.run(trace, scheme)
                chunked_s = _best_seconds(
                    lambda s=scheme: simulator.run(chunked, s), repeats, warmup
                )
                entries[scheme] = {
                    "chunked_refs_per_sec": round(refs / chunked_s),
                }
    return {
        "chunks": len(meta["chunks"]),
        "stored_bytes": stored,
        "compression": round(refs * 26 / stored, 2) if stored else None,
        "pack_refs_per_sec": round(refs / pack_s),
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
        ),
        "schemes": entries,
    }


def measure_parallel(
    traces: Sequence[Any],
    schemes: Sequence[str],
    jobs_list: Sequence[int] = DEFAULT_JOBS,
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
    batch: int | None = None,
) -> dict[str, Any]:
    """Whole-sweep throughput by worker count (warm pools, shm dispatch)."""
    from repro.runner.resilient import ResilientExperiment
    from repro.trace.columnar import ColumnarTrace

    columnar = [ColumnarTrace.from_trace(trace) for trace in traces]
    cells = len(schemes) * len(columnar)
    refs = sum(len(trace) for trace in columnar) * len(schemes)

    reference: dict[int, Any] = {}

    def sweep(jobs: int) -> None:
        experiment = ResilientExperiment(
            traces=columnar, schemes=list(schemes), jobs=jobs, batch=batch
        )
        outcome = experiment.run()
        if outcome.all_failures():
            raise RuntimeError(f"bench sweep failed at jobs={jobs}")
        reference[jobs] = outcome.results

    seconds: dict[str, float] = {}
    for jobs in jobs_list:
        seconds[str(jobs)] = round(
            _best_seconds(lambda j=jobs: sweep(j), repeats, warmup), 4
        )
    baseline = reference[jobs_list[0]]
    for jobs in jobs_list[1:]:
        if reference[jobs] != baseline:
            raise RuntimeError("parallel sweep results diverged across job counts")
    return {
        "cells": cells,
        "refs_total": refs,
        "seconds_by_jobs": seconds,
        "refs_per_sec_by_jobs": {
            jobs: round(refs / s) for jobs, s in seconds.items()
        },
    }


def build_report(
    length: int = DEFAULT_LENGTH,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    jobs_list: Sequence[int] = DEFAULT_JOBS,
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
    batch: int | None = None,
    parallel_schemes: Sequence[str] | None = None,
    full_roster: bool = True,
) -> dict[str, Any]:
    """Measure everything; returns the BENCH_throughput.json payload.

    The headline ``parallel_sweep`` uses the same composition as the
    pooled seed anchor (the kernel-accelerated hot four over pops +
    thor) so ``speedup_vs_seed_pooled`` is apples-to-apples.  A second
    ``parallel_sweep_full_roster`` section sweeps **every** registered
    protocol — the realistic paper sweep mixing kernel-fast cells with
    object-model ones — as context, not as a gated metric.
    """
    from repro.protocols.registry import available_protocols
    from repro.workloads.registry import make_trace

    if parallel_schemes is None:
        parallel_schemes = DEFAULT_SCHEMES
    pops = make_trace("pops", length=length)
    thor = make_trace("thor", length=length)
    sweep = measure_parallel(
        [pops, thor], parallel_schemes, jobs_list, repeats, warmup, batch
    )
    high = str(max(jobs_list))
    if high in sweep["refs_per_sec_by_jobs"]:
        sweep["speedup_vs_seed_pooled"] = round(
            sweep["refs_per_sec_by_jobs"][high] / SEED_POOLED_REFS_PER_SEC, 2
        )
    report = {
        "benchmark": "bench_throughput",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_cores": usable_cores(),
        "trace": {"workload": "pops", "length": length},
        "seed_record_refs_per_sec": dict(SEED_RECORD_REFS_PER_SEC),
        "seed_pooled_refs_per_sec": SEED_POOLED_REFS_PER_SEC,
        "schemes": measure_schemes(pops, schemes, repeats, warmup),
        "finite": measure_finite(pops, schemes, repeats=repeats, warmup=warmup),
        "streaming": measure_streaming(pops, schemes, repeats, warmup),
        "parallel_sweep": sweep,
    }
    if full_roster:
        report["parallel_sweep_full_roster"] = measure_parallel(
            [pops, thor],
            available_protocols(),
            jobs_list,
            repeats,
            warmup,
            batch,
        )
    return report


# ----------------------------------------------------------------------
# History + regression gate
# ----------------------------------------------------------------------


def headline_metrics(report: dict[str, Any]) -> dict[str, float]:
    """The flat metric map tracked across runs (higher is better)."""
    metrics: dict[str, float] = {}
    for scheme, entry in report.get("schemes", {}).items():
        metrics[f"columnar.{scheme}.refs_per_sec"] = entry["columnar_refs_per_sec"]
    for scheme, entry in report.get("finite", {}).get("schemes", {}).items():
        metrics[f"finite.{scheme}.refs_per_sec"] = entry["finite_refs_per_sec"]
    for scheme, entry in report.get("streaming", {}).get("schemes", {}).items():
        metrics[f"streaming.{scheme}.refs_per_sec"] = entry["chunked_refs_per_sec"]
    for jobs, value in (
        report.get("parallel_sweep", {}).get("refs_per_sec_by_jobs", {}).items()
    ):
        metrics[f"parallel.jobs{jobs}.refs_per_sec"] = value
    return metrics


def load_history(path: Path) -> list[dict[str, Any]]:
    """All parseable history records, oldest first (bad lines skipped)."""
    records: list[dict[str, Any]] = []
    if not path.exists():
        return records
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and isinstance(record.get("metrics"), dict):
            records.append(record)
    return records


def append_history(report: dict[str, Any], path: Path) -> dict[str, Any]:
    """Append this run's record to the JSONL history; returns the record."""
    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": report.get("python"),
        "platform": report.get("platform"),
        "trace": report.get("trace"),
        "metrics": headline_metrics(report),
    }
    with path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def rolling_baseline(
    history: Sequence[dict[str, Any]], metric: str, window: int = DEFAULT_WINDOW
) -> float | None:
    """Median of *metric* over the last *window* history records."""
    values = [
        record["metrics"][metric]
        for record in history
        if metric in record.get("metrics", {})
    ][-window:]
    if not values:
        return None
    return median(values)


def find_regressions(
    report: dict[str, Any],
    history: Sequence[dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> list[str]:
    """Metrics more than *threshold* below their rolling baseline.

    Comparable records only: history entries measured on a different
    trace length are skipped (refs/s scales with cell size, so mixing
    smoke and full runs would poison the baseline).
    """
    trace = report.get("trace")
    comparable = [record for record in history if record.get("trace") == trace]
    regressions: list[str] = []
    for metric, value in headline_metrics(report).items():
        baseline = rolling_baseline(comparable, metric, window)
        if baseline is None or baseline <= 0:
            continue
        if value < baseline * (1.0 - threshold):
            regressions.append(
                f"{metric}: {value:,.0f} refs/s is "
                f"{(1.0 - value / baseline) * 100.0:.1f}% below the rolling "
                f"baseline {baseline:,.0f}"
            )
    return regressions


def finite_kernel_violations(
    report: dict[str, Any], limit: float = FINITE_SLOWDOWN_LIMIT
) -> list[str]:
    """Schemes whose finite kernel runs more than *limit*x slower than
    the infinite kernel (empty when the finite fast path holds)."""
    violations: list[str] = []
    finite = report.get("finite", {})
    for scheme, entry in finite.get("schemes", {}).items():
        slowdown = entry.get("slowdown_vs_infinite")
        if slowdown is not None and slowdown > limit:
            violations.append(
                f"finite kernel for {scheme} at {finite.get('geometry')} is "
                f"{slowdown:.2f}x slower than the infinite kernel "
                f"(limit {limit:.1f}x)"
            )
    return violations


def usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def scaling_violation(
    report: dict[str, Any], low: int = 1, high: int = 4
) -> str | None:
    """Why the scaling gate fails, or None if jobs=high >= jobs=low.

    The gate only binds where parallel speedup is physically possible:
    on a box with fewer than two usable cores, workers time-slice one
    CPU and *any* pool overhead makes jobs=high lose — the seed
    baseline showed the same inversion — so the gate reports itself
    skipped instead of failing on hardware that cannot scale.
    """
    cores = report.get("cpu_cores") or usable_cores()
    if cores < 2:
        return None
    by_jobs = report.get("parallel_sweep", {}).get("refs_per_sec_by_jobs", {})
    low_value = by_jobs.get(str(low))
    high_value = by_jobs.get(str(high))
    if low_value is None or high_value is None:
        return f"scaling gate needs jobs={low} and jobs={high} measurements"
    if high_value < low_value:
        return (
            f"parallel dispatch does not scale: jobs={high} ran "
            f"{high_value:,} refs/s < jobs={low} at {low_value:,} refs/s"
        )
    return None
