"""Regeneration functions: one per table/figure of the paper.

Each ``table*``/``figure*``/``section*`` function reproduces one
artifact of the paper's evaluation and returns an :class:`Artifact`
holding both the structured data and an ASCII rendering.  The
:class:`PaperExperiments` driver caches the expensive pieces (trace
generation, the four-scheme simulation sweep) so regenerating every
artifact costs one simulation pass per scheme, exactly as in the paper.

Paper-reported values for each artifact are recorded in
EXPERIMENTS.md alongside the measured ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.breakdown import TABLE5_ROWS, breakdown_fractions, breakdown_table
from repro.analysis.invalidations import invalidation_histogram
from repro.analysis.scalability import (
    broadcast_cost_model,
    directory_storage_table,
    pointer_sweep,
)
from repro.analysis.sensitivity import overhead_model
from repro.analysis.spinlocks import spin_lock_impact
from repro.analysis.system import effective_processor_bound
from repro.analysis.transactions import transaction_costs
from repro.core.experiment import Experiment, ExperimentResult
from repro.core.result import SimulationResult, merge_results
from repro.core.simulator import Simulator
from repro.cost.bus import non_pipelined_bus, pipelined_bus
from repro.cost.timing import PAPER_TIMING
from repro.protocols.events import EventType
from repro.report.figures import (
    bar_chart,
    histogram_chart,
    range_chart,
    stacked_fraction_chart,
)
from repro.report.tables import format_table
from repro.trace.stats import compute_statistics
from repro.workloads.registry import DEFAULT_LENGTH, standard_traces

#: The four schemes of the paper's main evaluation, in its column order.
PAPER_SCHEMES = ("dir1nb", "wti", "dir0b", "dragon")

_SCHEME_TITLES = {
    "dir1nb": "Dir1NB",
    "wti": "WTI",
    "dir0b": "Dir0B",
    "dragon": "Dragon",
    "dirnnb": "DirnNB",
    "berkeley": "Berkeley",
}


@dataclass(frozen=True)
class Artifact:
    """One regenerated table or figure."""

    artifact_id: str
    title: str
    data: object
    text: str

    def __str__(self) -> str:
        return self.text


# Table 4 rows: (label, event or roll-up key, schemes that report it).
_ALL = frozenset(PAPER_SCHEMES)
_TABLE4_ROWS: list[tuple[str, object, frozenset]] = [
    ("instr", EventType.INSTR, _ALL),
    ("read", "read", _ALL),
    ("  rd-hit", EventType.RD_HIT, _ALL),
    ("  rd-miss(rm)", "rm", _ALL),
    ("    rm-blk-cln", EventType.RM_BLK_CLN, frozenset({"dir1nb", "dir0b", "dragon"})),
    ("    rm-blk-drty", EventType.RM_BLK_DRTY, frozenset({"dir1nb", "dir0b", "dragon"})),
    ("  rm-first-ref", EventType.RM_FIRST_REF, _ALL),
    ("write", "write", _ALL),
    ("  wrt-hit(wh)", "wh", _ALL),
    ("    wh-blk-cln", EventType.WH_BLK_CLN, frozenset({"dir0b"})),
    ("    wh-blk-drty", EventType.WH_BLK_DRTY, frozenset({"dir0b"})),
    ("    wh-distrib", EventType.WH_DISTRIB, frozenset({"dragon"})),
    ("    wh-local", EventType.WH_LOCAL, frozenset({"dragon"})),
    ("  wrt-miss(wm)", "wm", _ALL),
    ("    wm-blk-cln", EventType.WM_BLK_CLN, frozenset({"dir1nb", "dir0b", "dragon"})),
    ("    wm-blk-drty", EventType.WM_BLK_DRTY, frozenset({"dir1nb", "dir0b", "dragon"})),
    ("  wm-first-ref", EventType.WM_FIRST_REF, _ALL),
]


class PaperExperiments:
    """Cached driver that regenerates every artifact of the evaluation.

    Args:
        length: synthetic trace length (the paper's traces are ~3.2M
            references; the default scales that down for pure Python).
        simulator: optionally a customized simulator (block size,
            sharing view, invariant checking).
    """

    def __init__(
        self, length: int = DEFAULT_LENGTH, simulator: Simulator | None = None
    ) -> None:
        self.length = length
        self.simulator = simulator or Simulator()
        self.pipelined = pipelined_bus()
        self.non_pipelined = non_pipelined_bus()
        self._traces = None
        self._experiment: ExperimentResult | None = None
        self._extra: dict[str, SimulationResult] = {}

    # ------------------------------------------------------------------
    # Cached inputs
    # ------------------------------------------------------------------

    @property
    def traces(self):
        """The (lazily generated) standard input traces."""
        if self._traces is None:
            self._traces = standard_traces(self.length)
        return self._traces

    @property
    def experiment(self) -> ExperimentResult:
        """The four-scheme x three-trace simulation sweep."""
        if self._experiment is None:
            self._experiment = Experiment(
                traces=self.traces,
                schemes=list(PAPER_SCHEMES),
                simulator=self.simulator,
            ).run()
        return self._experiment

    def combined(self, scheme: str) -> SimulationResult:
        """Pooled three-trace result for one of the paper's schemes."""
        if scheme in PAPER_SCHEMES:
            return self.experiment.combined(scheme)
        if scheme not in self._extra:
            runs = [self.simulator.run(trace, scheme) for trace in self.traces]
            self._extra[scheme] = merge_results(runs)
        return self._extra[scheme]

    def _combined_map(self) -> dict[str, SimulationResult]:
        return {scheme: self.combined(scheme) for scheme in PAPER_SCHEMES}

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def table1(self) -> Artifact:
        """Table 1: timing for fundamental bus operations."""
        rows = PAPER_TIMING.as_table_rows()
        text = format_table(
            ["operation", "cycles"],
            rows,
            title="Table 1: fundamental bus operation timing",
            precision=0,
        )
        return Artifact("table1", "Fundamental bus timing", dict(rows), text)

    def table2(self) -> Artifact:
        """Table 2: per-event bus cycle costs for both bus models."""
        pipe_rows = dict(self.pipelined.as_table_rows())
        nonpipe_rows = dict(self.non_pipelined.as_table_rows())
        rows = [
            (name, pipe_rows[name], nonpipe_rows[name]) for name in pipe_rows
        ]
        text = format_table(
            ["access type", "pipelined", "non-pipelined"],
            rows,
            title="Table 2: bus cycle costs per event",
            precision=0,
        )
        return Artifact(
            "table2",
            "Bus cycle costs",
            {"pipelined": pipe_rows, "non-pipelined": nonpipe_rows},
            text,
        )

    def table3(self) -> Artifact:
        """Table 3: trace characteristics (counts in thousands)."""
        stats = [compute_statistics(trace.records, trace.name) for trace in self.traces]
        rows = [
            (
                s.name.upper(),
                s.total_refs / 1000.0,
                s.instr_refs / 1000.0,
                s.data_reads / 1000.0,
                s.data_writes / 1000.0,
                s.user_refs / 1000.0,
                s.system_refs / 1000.0,
            )
            for s in stats
        ]
        text = format_table(
            ["Trace", "Refs", "Instr", "DRd", "DWrt", "User", "Sys"],
            rows,
            title="Table 3: trace characteristics (thousands of references)",
            precision=1,
        )
        return Artifact("table3", "Trace characteristics", stats, text)

    def table4(self) -> Artifact:
        """Table 4: event frequencies as % of all references."""
        combined = self._combined_map()
        frequencies = {
            scheme: result.frequencies() for scheme, result in combined.items()
        }
        rows = []
        for label, key, schemes in _TABLE4_ROWS:
            row: list[object] = [label]
            for scheme in PAPER_SCHEMES:
                if scheme not in schemes:
                    row.append(None)
                    continue
                freq = frequencies[scheme]
                if key == "read":
                    value = 100.0 * freq.read_fraction
                elif key == "write":
                    value = 100.0 * freq.write_fraction
                elif key == "rm":
                    value = 100.0 * freq.read_miss_fraction
                elif key == "wm":
                    value = 100.0 * freq.write_miss_fraction
                elif key == "wh":
                    value = 100.0 * freq.write_hit_fraction
                else:
                    value = freq.percent(key)
                row.append(value)
            rows.append(tuple(row))
        text = format_table(
            ["Event"] + [_SCHEME_TITLES[s] for s in PAPER_SCHEMES],
            rows,
            title="Table 4: event frequencies (% of all references)",
            precision=2,
        )
        return Artifact("table4", "Event frequencies", frequencies, text)

    def table5(self) -> Artifact:
        """Table 5: bus cycle breakdown per reference, pipelined bus."""
        combined = self._combined_map()
        table = breakdown_table(combined, self.pipelined)
        rows = []
        for category in TABLE5_ROWS:
            rows.append(
                (category.value,)
                + tuple(table[scheme][category] for scheme in PAPER_SCHEMES)
            )
        rows.append(
            ("cumulative",)
            + tuple(sum(table[scheme].values()) for scheme in PAPER_SCHEMES)
        )
        text = format_table(
            ["Access type"] + [_SCHEME_TITLES[s] for s in PAPER_SCHEMES],
            rows,
            title="Table 5: bus cycles per reference by operation (pipelined bus)",
            precision=4,
        )
        return Artifact("table5", "Bus cycle breakdown", table, text)

    # ------------------------------------------------------------------
    # Figures
    # ------------------------------------------------------------------

    def figure1(self) -> Artifact:
        """Figure 1: invalidations needed on writes to clean blocks."""
        result = self.combined("dir0b")
        histogram = invalidation_histogram(result)
        num_caches = max(len(trace.pids) for trace in self.traces)
        buckets = histogram.percent_rows(num_caches - 1)
        text = histogram_chart(
            buckets,
            title=(
                "Figure 1: caches invalidated on a write to a previously-clean "
                f"block (<=1 for {100 * histogram.single_or_none_fraction:.1f}%)"
            ),
        )
        return Artifact("figure1", "Invalidation histogram", histogram, text)

    def figure2(self) -> Artifact:
        """Figure 2: bus cycles/reference range over the two buses."""
        ranges = {}
        for scheme in PAPER_SCHEMES:
            result = self.combined(scheme)
            ranges[_SCHEME_TITLES[scheme]] = (
                result.bus_cycles_per_reference(self.pipelined),
                result.bus_cycles_per_reference(self.non_pipelined),
            )
        text = range_chart(
            ranges,
            title="Figure 2: bus cycles per reference (pipelined..non-pipelined)",
        )
        return Artifact("figure2", "Bus cycle ranges", ranges, text)

    def figure3(self) -> Artifact:
        """Figure 3: per-trace bus cycles/reference ranges."""
        data: dict[str, dict[str, tuple[float, float]]] = {}
        blocks = []
        for trace in self.traces:
            ranges = {}
            for scheme in PAPER_SCHEMES:
                result = self.experiment.result(scheme, trace.name)
                ranges[_SCHEME_TITLES[scheme]] = (
                    result.bus_cycles_per_reference(self.pipelined),
                    result.bus_cycles_per_reference(self.non_pipelined),
                )
            data[trace.name] = ranges
            blocks.append(range_chart(ranges, title=f"[{trace.name.upper()}]"))
        text = "Figure 3: bus cycles per reference by trace\n" + "\n\n".join(blocks)
        return Artifact("figure3", "Per-trace bus cycles", data, text)

    def figure4(self) -> Artifact:
        """Figure 4: breakdown as a fraction of each scheme's total."""
        combined = self._combined_map()
        fractions = breakdown_fractions(combined, self.pipelined)
        named = {
            _SCHEME_TITLES[scheme]: {
                category.value: value for category, value in row.items() if value > 0
            }
            for scheme, row in fractions.items()
        }
        text = stacked_fraction_chart(
            named, title="Figure 4: bus cycle breakdown (fraction of scheme total)"
        )
        return Artifact("figure4", "Breakdown fractions", fractions, text)

    def figure5(self) -> Artifact:
        """Figure 5: average bus cycles per bus transaction."""
        combined = self._combined_map()
        costs = transaction_costs(combined, self.pipelined)
        named = {_SCHEME_TITLES[s]: costs[s] for s in PAPER_SCHEMES}
        text = bar_chart(
            named,
            title="Figure 5: average bus cycles per bus transaction (pipelined)",
            precision=2,
        )
        return Artifact("figure5", "Cycles per transaction", costs, text)

    # ------------------------------------------------------------------
    # Section analyses
    # ------------------------------------------------------------------

    def section51(self, q_values=(0.0, 0.5, 1.0, 2.0)) -> Artifact:
        """Section 5.1: fixed-overhead sensitivity + the Berkeley estimate."""
        dir0b = overhead_model(self.combined("dir0b"), self.pipelined)
        dragon = overhead_model(self.combined("dragon"), self.pipelined)
        berkeley = self.combined("berkeley").bus_cycles_per_reference(self.pipelined)
        rows = [
            (
                q,
                dir0b.cycles(q),
                dragon.cycles(q),
                100.0 * dir0b.relative_excess(dragon, q),
            )
            for q in q_values
        ]
        text = format_table(
            ["q", "Dir0B", "Dragon", "Dir0B excess %"],
            rows,
            title=(
                "Section 5.1: cycles/ref with q overhead cycles per transaction\n"
                f"(Dir0B = {dir0b.base:.4f} + {dir0b.slope:.4f}q, "
                f"Dragon = {dragon.base:.4f} + {dragon.slope:.4f}q; "
                f"Berkeley estimate = {berkeley:.4f})"
            ),
        )
        data = {"dir0b": dir0b, "dragon": dragon, "berkeley": berkeley, "rows": rows}
        return Artifact("section51", "Overhead sensitivity", data, text)

    def section52(self, schemes=("dir1nb", "dir0b")) -> Artifact:
        """Section 5.2: spin-lock impact experiment."""
        impacts = [
            spin_lock_impact(self.traces, scheme, self.pipelined, self.simulator)
            for scheme in schemes
        ]
        rows = [
            (
                _SCHEME_TITLES.get(impact.scheme, impact.scheme),
                impact.with_spins,
                impact.without_spins,
                100.0 * impact.relative_drop,
            )
            for impact in impacts
        ]
        text = format_table(
            ["Scheme", "with spins", "without spins", "drop %"],
            rows,
            title="Section 5.2: impact of excluding lock-test reads (pipelined bus)",
        )
        return Artifact("section52", "Spin lock impact", impacts, text)

    def section6_sequential(self) -> Artifact:
        """Section 6: broadcast (Dir0B) vs sequential invalidation (DirnNB)."""
        dir0b = self.combined("dir0b").bus_cycles_per_reference(self.pipelined)
        dirnnb = self.combined("dirnnb").bus_cycles_per_reference(self.pipelined)
        rows = [("Dir0B (broadcast)", dir0b), ("DirnNB (sequential)", dirnnb)]
        text = format_table(
            ["Scheme", "cycles/ref"],
            rows,
            title=(
                "Section 6: full broadcast vs sequential invalidations "
                f"(+{100.0 * (dirnnb / dir0b - 1.0):.2f}%)"
            ),
        )
        return Artifact(
            "section6_sequential",
            "Sequential invalidation",
            {"dir0b": dir0b, "dirnnb": dirnnb},
            text,
        )

    def section6_dir1b(self, broadcast_costs=(1.0, 2.0, 4.0, 8.0, 16.0)) -> Artifact:
        """Section 6: the Dir1B linear broadcast-cost model."""
        model = broadcast_cost_model(self.combined("dir1b"), self.pipelined)
        rows = [(b, model.cycles(b)) for b in broadcast_costs]
        text = format_table(
            ["broadcast cost b", "cycles/ref"],
            rows,
            title=(
                "Section 6: Dir1B cost model "
                f"(cycles/ref = {model.base:.4f} + {model.rate:.4f} b)"
            ),
        )
        return Artifact("section6_dir1b", "Dir1B broadcast model", model, text)

    def section6_sweep(self, pointer_counts=(1, 2, 3)) -> Artifact:
        """Section 6: limited-pointer sweep (DiriB vs DiriNB)."""
        points = pointer_sweep(
            self.traces,
            self.pipelined,
            pointer_counts=pointer_counts,
            simulator=self.simulator,
        )
        rows = [
            (
                point.label,
                point.bus_cycles_per_reference,
                100.0 * point.data_miss_fraction,
                point.pointer_evictions_per_reference,
                point.broadcasts_per_reference,
                point.directory_bits_per_block,
            )
            for point in points
        ]
        text = format_table(
            ["Scheme", "cycles/ref", "miss %", "ptr evic/ref", "bcast/ref", "bits/blk"],
            rows,
            title="Section 6: limited-pointer directory sweep",
        )
        return Artifact("section6_sweep", "Pointer sweep", points, text)

    def section6_storage(self) -> Artifact:
        """Section 6: directory storage bits/block vs machine size."""
        table = directory_storage_table()
        organizations = list(next(iter(table.values())))
        rows = [
            (caches,) + tuple(row[org] for org in organizations)
            for caches, row in table.items()
        ]
        text = format_table(
            ["caches"] + organizations,
            rows,
            title="Section 6: directory storage (bits per memory block)",
            precision=0,
        )
        return Artifact("section6_storage", "Directory storage", table, text)

    def section5_system(self) -> Artifact:
        """Section 5's shared-bus effective-processor bound."""
        rows = []
        bounds = {}
        for scheme in PAPER_SCHEMES:
            cycles = self.combined(scheme).bus_cycles_per_reference(self.pipelined)
            bound = effective_processor_bound(scheme, cycles)
            bounds[scheme] = bound
            rows.append(
                (_SCHEME_TITLES[scheme], cycles, bound.max_processors)
            )
        text = format_table(
            ["Scheme", "cycles/ref", "max processors"],
            rows,
            title=(
                "Section 5: shared-bus saturation bound "
                "(10 MIPS, 1 data ref/instr, 100 ns bus)"
            ),
            precision=2,
        )
        return Artifact("section5_system", "System bound", bounds, text)

    def finite_capacity(
        self, geometries=("256x2", "1024x4", "4096x4")
    ) -> Artifact:
        """Finite-capacity extension: cost decomposition + ranking shifts.

        The paper simulates infinite caches and argues finite-cache cost
        is the coherence cost plus a capacity term (§4).  This artifact
        measures that decomposition across a capacity sweep and asks the
        question the paper could not: does finite capacity *reorder* the
        schemes?
        """
        from repro.analysis.finite import decompose_finite_cost, ranking_shifts

        trace = self.traces[0]
        decomposition_rows = []
        decompositions = []
        for spec in geometries:
            decomposition = decompose_finite_cost(
                trace, "dir0b", self.pipelined,
                geometry=spec, simulator=self.simulator,
            )
            decompositions.append(decomposition)
            decomposition_rows.append(
                (
                    decomposition.geometry,
                    decomposition.finite_cost,
                    decomposition.infinite_cost,
                    decomposition.capacity_component,
                    100.0 * decomposition.capacity_share,
                )
            )
        decomposition_text = format_table(
            ["geometry", "finite", "infinite", "capacity", "cap share %"],
            decomposition_rows,
            title=(
                f"Finite-capacity decomposition: Dir0B cycles/ref on "
                f"{trace.name.upper()} (pipelined bus)"
            ),
        )
        shifts = ranking_shifts(
            trace, list(PAPER_SCHEMES), self.pipelined, list(geometries),
            simulator=self.simulator,
        )
        shift_rows = [
            (
                shift.geometry.canonical(),
                " < ".join(shift.finite_order),
                "yes" if shift.shifted else "no",
                ", ".join(shift.displaced) or "-",
            )
            for shift in shifts
        ]
        shift_text = format_table(
            ["geometry", "finite ranking (best first)", "shifted?", "displaced"],
            shift_rows,
            title=(
                "Scheme ranking under finite capacity "
                f"(infinite: {' < '.join(shifts[0].infinite_order)})"
            ),
        )
        return Artifact(
            "finite_capacity",
            "Finite-capacity decomposition and ranking",
            {"decompositions": decompositions, "shifts": shifts},
            decomposition_text + "\n\n" + shift_text,
        )

    def conclusions(self) -> Artifact:
        """Section 7's claims, each re-derived from the measurements."""
        from repro.analysis.bandwidth import bandwidth_comparison
        from repro.analysis.invalidations import invalidation_histogram
        from repro.analysis.system import effective_processor_bound

        dir0b = self.combined("dir0b")
        dragon = self.combined("dragon")
        dirnnb = self.combined("dirnnb")
        bus = self.pipelined

        competitiveness = dir0b.bus_cycles_per_reference(
            bus
        ) / dragon.bus_cycles_per_reference(bus)
        histogram = invalidation_histogram(dir0b)
        sequential_delta = (
            dirnnb.bus_cycles_per_reference(bus)
            / dir0b.bus_cycles_per_reference(bus)
            - 1.0
        )
        bandwidth = bandwidth_comparison(dir0b)
        bound = effective_processor_bound(
            "dragon", dragon.bus_cycles_per_reference(bus)
        )

        rows = [
            (
                "directory competitive with best snoopy (Dir0B/Dragon)",
                f"{competitiveness:.2f}x (paper 1.46x)",
            ),
            (
                "writes to clean blocks reaching <=1 other cache",
                f"{100 * histogram.single_or_none_fraction:.1f}% (paper >85%)",
            ),
            (
                "sequential invalidation penalty vs broadcast",
                f"+{100 * sequential_delta:.1f}% (paper +1.6%)",
            ),
            (
                "directory/memory bandwidth demand ratio",
                f"{bandwidth.ratio:.2f} (paper: 'only slightly higher')",
            ),
            (
                "shared-bus bound, best scheme (10 MIPS, 100 ns)",
                f"{bound.max_processors:.1f} processors (paper ~15)",
            ),
        ]
        text = format_table(
            ["conclusion", "measured"],
            rows,
            title="Section 7: the paper's conclusions, re-derived",
        )
        data = {
            "competitiveness": competitiveness,
            "single_or_none": histogram.single_or_none_fraction,
            "sequential_delta": sequential_delta,
            "bandwidth_ratio": bandwidth.ratio,
            "max_processors": bound.max_processors,
        }
        return Artifact("conclusions", "Conclusions", data, text)

    # ------------------------------------------------------------------

    def all_artifacts(self) -> list[Artifact]:
        """Regenerate every table, figure, and section analysis."""
        makers: list[Callable[[], Artifact]] = [
            self.table1,
            self.table2,
            self.table3,
            self.table4,
            self.table5,
            self.figure1,
            self.figure2,
            self.figure3,
            self.figure4,
            self.figure5,
            self.section51,
            self.section52,
            self.section6_sequential,
            self.section6_dir1b,
            self.section6_sweep,
            self.section6_storage,
            self.section5_system,
            self.finite_capacity,
            self.conclusions,
        ]
        return [make() for make in makers]
