"""Emit the full evaluation as one self-contained Markdown report.

``write_report`` regenerates every artifact through
:class:`~repro.report.experiments.PaperExperiments` and renders them —
ASCII tables and figures in fenced code blocks — into a single
``REPORT.md``-style document with provenance (trace length, machine
size, library version) at the top.
"""

from __future__ import annotations

from pathlib import Path

from repro.report.experiments import PaperExperiments

_SECTIONS = [
    ("Inputs", ["table1", "table2", "table3"]),
    ("Event frequencies and costs", ["table4", "table5"]),
    ("Figures", ["figure1", "figure2", "figure3", "figure4", "figure5"]),
    (
        "Sensitivity and spin locks",
        ["section51", "section52"],
    ),
    (
        "Scalability (Section 6)",
        [
            "section6_sequential",
            "section6_dir1b",
            "section6_sweep",
            "section6_storage",
            "section5_system",
        ],
    ),
    ("Finite capacity (extension)", ["finite_capacity"]),
    ("Conclusions", ["conclusions"]),
]


def render_report(experiments: PaperExperiments) -> str:
    """Render every artifact into one Markdown document."""
    from repro import __version__

    lines = [
        "# Directory Schemes for Cache Coherence — regenerated evaluation",
        "",
        "Reproduction of Agarwal, Simoni, Hennessy & Horowitz (ISCA 1988).",
        "",
        f"* library version: `{__version__}`",
        f"* trace length: {experiments.length:,} references per workload",
        f"* workloads: {', '.join(trace.name for trace in experiments.traces)}",
        "* caches: infinite, 16-byte blocks, sharing keyed by process",
        "",
    ]
    for title, artifact_ids in _SECTIONS:
        lines.append(f"## {title}")
        lines.append("")
        for artifact_id in artifact_ids:
            artifact = getattr(experiments, artifact_id)()
            lines.append(f"### {artifact.title}")
            lines.append("")
            lines.append("```text")
            lines.append(artifact.text)
            lines.append("```")
            lines.append("")
    return "\n".join(lines)


def write_report(
    path: str | Path,
    length: int = 60_000,
    experiments: PaperExperiments | None = None,
) -> Path:
    """Regenerate all artifacts and write the Markdown report to *path*."""
    experiments = experiments or PaperExperiments(length=length)
    output = Path(path)
    output.write_text(render_report(experiments) + "\n", encoding="utf-8")
    return output
