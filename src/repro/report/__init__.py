"""Report rendering: ASCII tables and figures, one function per artifact."""

from repro.report.tables import format_table
from repro.report.figures import bar_chart, histogram_chart, range_chart
from repro.report import experiments

__all__ = [
    "format_table",
    "bar_chart",
    "histogram_chart",
    "range_chart",
    "experiments",
]
