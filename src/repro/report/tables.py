"""Minimal ASCII table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def _render_cell(value, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
    precision: int = 4,
) -> str:
    """Render a fixed-width ASCII table.

    ``None`` cells render as ``-`` (the paper uses dashes for events
    that do not apply to a scheme).
    """
    rendered = [[_render_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        """Render one row at the computed column widths."""
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
