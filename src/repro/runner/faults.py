"""Fault injection: deliberately break traces, readers, and protocols.

Robustness claims are only as good as the faults they were tested
against.  :class:`FaultInjector` manufactures every fault class the
resilient runner promises to contain:

* **corrupt trace records** — bit-flipped addresses, bogus flag
  letters, garbage lines in text traces; overwritten type codes and
  truncated headers/bodies in binary traces (which must surface as
  :class:`~repro.errors.TraceFormatError`);
* **flaky readers** — iterables that raise
  :class:`~repro.errors.TransientError` partway through the first N
  passes and then recover (which the retry layer must absorb);
* **illegal protocol state** — a second dirty copy of a block planted
  behind the protocol's back (which the
  :class:`~repro.core.invariants.InvariantChecker` must detect as an
  :class:`~repro.errors.InvariantViolation`).

Everything is deterministic under a seed, so fault-containment tests
are exactly reproducible.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import ConfigurationError, TransientError
from repro.memory.line import LineState
from repro.protocols.base import CoherenceProtocol
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace

#: Text-trace corruption modes understood by :meth:`FaultInjector.corrupt_text_trace`.
TEXT_CORRUPTION_MODES = ("bad-address", "bogus-flag", "garbage", "bad-type")


class KillPoint:
    """A process-kill simulator for checkpoint/resume tests.

    ``armed`` is deliberately *class-level* state: it is not pickled
    into checkpoints, so a snapshot taken before the "kill" restores
    into whatever armed/disarmed state the resuming process sets —
    exactly like a real process death and restart.
    """

    armed: bool = False

    @classmethod
    def arm(cls) -> None:
        cls.armed = True

    @classmethod
    def disarm(cls) -> None:
        cls.armed = False

    @classmethod
    def check(cls) -> None:
        """Raise KeyboardInterrupt (simulated SIGINT) when armed."""
        if cls.armed:
            raise KeyboardInterrupt("injected process kill")


class FlakyReader:
    """A record iterable that fails transiently, then recovers.

    The first ``fail_times`` iteration passes raise
    :class:`~repro.errors.TransientError` after ``fail_after`` records;
    subsequent passes yield the stream cleanly.  Sequence access
    (len/indexing/slicing) always works — only *streaming* is flaky,
    like an NFS hiccup mid-read.
    """

    def __init__(
        self,
        records: Iterable[TraceRecord],
        fail_after: int,
        fail_times: int = 1,
    ) -> None:
        if fail_after < 0:
            raise ConfigurationError(f"fail_after must be >= 0, got {fail_after}")
        self._records = list(records)
        self.fail_after = fail_after
        self.failures_left = fail_times
        self.passes = 0

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def __iter__(self) -> Iterator[TraceRecord]:
        self.passes += 1
        flaky = self.failures_left > 0
        if flaky:
            self.failures_left -= 1
        for position, record in enumerate(self._records):
            if flaky and position == self.fail_after:
                raise TransientError(
                    f"injected transient read failure at record {position}"
                )
            yield record


class FlakyTrace(Trace):
    """A :class:`Trace` whose record stream is a :class:`FlakyReader`.

    Metadata access (``pids``/``cpus``/``len``) never trips the fault —
    only full iteration does, mirroring a reader that can stat a file
    but hiccups while streaming it.
    """

    def __init__(self, base: Trace, fail_after: int, fail_times: int = 1) -> None:
        self.name = base.name
        self.records = FlakyReader(base.records, fail_after, fail_times)
        self.description = base.description

    @property
    def pids(self) -> list[int]:
        return sorted({record.pid for record in self.records._records})

    @property
    def cpus(self) -> list[int]:
        return sorted({record.cpu for record in self.records._records})


class SaboteurProtocol:
    """Wraps a protocol and injects a fault after N data references.

    Modes:

    * ``"illegal-state"`` — silently plant a second dirty copy of the
      triggering block, so the next invariant check fails;
    * ``"kill"`` — consult :class:`KillPoint` and die (simulated
      process kill) if armed;
    * ``"transient"`` — raise :class:`~repro.errors.TransientError`
      once per arming of ``failures_left``.

    Eviction modes (the finite-capacity bug classes; they arm at the
    trigger and corrupt the machine's replacement behaviour):

    * ``"lru-mru"`` — from the trigger on, reverse every finite set's
      recency order before each reference, so replacement evicts the
      most- instead of least-recently-used line (coherent but wrong:
      only a differential against the clean run can catch it);
    * ``"drop-writeback"`` — at the first opportunity after the
      trigger, evict a dirty line without writing it back (directory
      told the copy is simply gone), leaving memory stale — the
      value-coherence oracle's eviction audit must catch it;
    * ``"stale-directory"`` — from the trigger on, evict a clean
      cached line at every reference while leaving its directory entry
      untouched, as if eviction notifications were systematically lost
      — the directory-agreement invariant (or, for snoopy schemes with
      no directory, the stream of spurious re-fetch misses in the
      differential) must catch it.

    The wrapper is pickleable (it holds only the inner protocol, ints
    and strings), so it survives checkpoint snapshots.
    """

    MODES = (
        "illegal-state",
        "kill",
        "transient",
        "lru-mru",
        "drop-writeback",
        "stale-directory",
    )

    #: Modes that corrupt finite-capacity eviction logic.
    EVICTION_MODES = ("lru-mru", "drop-writeback", "stale-directory")

    def __init__(
        self,
        inner: CoherenceProtocol,
        trigger_after: int,
        mode: str = "illegal-state",
        failures_left: int = 1,
    ) -> None:
        if mode not in self.MODES:
            raise ConfigurationError(
                f"mode must be one of {self.MODES}, got {mode!r}"
            )
        self.inner = inner
        self.trigger_after = trigger_after
        self.mode = mode
        self.failures_left = failures_left
        self.refs_seen = 0
        self.fired = False

    # Protocol-shaped delegation: anything not overridden goes inward.
    # Dunder probes (and pickle's pre-__init__ __setstate__ lookup, when
    # self.inner does not exist yet) must fall through to AttributeError.
    def __getattr__(self, attribute):
        if attribute.startswith("__") or "inner" not in self.__dict__:
            raise AttributeError(attribute)
        return getattr(self.inner, attribute)

    def _maybe_trigger(self, block: int) -> None:
        self.refs_seen += 1
        if self.mode in self.EVICTION_MODES:
            if self.refs_seen >= self.trigger_after:
                self._sabotage_eviction(block)
            return
        if self.refs_seen != self.trigger_after:
            return
        if self.mode == "kill":
            KillPoint.check()
        elif self.mode == "transient":
            if self.failures_left > 0:
                self.failures_left -= 1
                raise TransientError(
                    f"injected transient protocol failure at ref {self.refs_seen}"
                )
        elif self.mode == "illegal-state":
            inject_illegal_dirty_copies(self.inner, block)

    # -- eviction-logic corruption (finite-capacity bug classes) -------

    def _sabotage_eviction(self, accessed: int) -> None:
        from repro.memory.cache import FiniteCache

        if self.mode == "lru-mru":
            # Continuous: keep every finite set in reversed recency
            # order, turning LRU replacement into MRU replacement.
            for cache in self.inner._caches:
                if isinstance(cache, FiniteCache):
                    for line_set in cache._sets:
                        items = list(line_set.items())
                        line_set.clear()
                        line_set.update(reversed(items))
            return
        if self.mode == "stale-directory":
            # Continuous: every eviction notification is "lost".  A
            # single silent eviction self-repairs on the victim's next
            # miss, so a systematic fault is needed for the stale
            # window to be observable.
            victim = self._find_victim(accessed, want_dirty=False)
            if victim is not None:
                cache_index, block = victim
                self.fired = True
                self.inner._caches[cache_index].evict(block)
            return
        if self.fired:
            return
        victim = self._find_victim(accessed, want_dirty=True)
        if victim is None:
            return  # fire at the first reference with a suitable victim
        cache_index, block = victim
        self.fired = True
        self.inner._caches[cache_index].evict(block)
        # "drop-writeback": the directory learns the copy is gone
        # (structurally consistent) but the dirty data never reached
        # memory.
        directory = getattr(self.inner, "directory", None)
        if directory is not None:
            directory.note_invalidated(block, cache_index)

    def _find_victim(self, accessed: int, want_dirty: bool):
        """A (cache, block) pair to evict: dirty or clean, not *accessed*."""
        for cache_index, cache in enumerate(self.inner._caches):
            for block, state in self.inner.cache_contents(cache_index).items():
                if block == accessed:
                    continue
                if bool(getattr(state, "is_dirty", False)) == want_dirty:
                    return cache_index, block
        return None

    def on_read(self, cache: int, block: int, first_ref: bool):
        result = self.inner.on_read(cache, block, first_ref)
        self._maybe_trigger(block)
        return result

    def on_write(self, cache: int, block: int, first_ref: bool):
        result = self.inner.on_write(cache, block, first_ref)
        self._maybe_trigger(block)
        return result


class ProcessKiller:
    """Wraps a protocol and SIGKILLs *its own process* after N data refs.

    The real-death sibling of :class:`SaboteurProtocol`'s ``"kill"``
    mode: where that raises a catchable ``KeyboardInterrupt``, this one
    sends an uncatchable ``SIGKILL`` to ``os.getpid()`` — no atexit, no
    finally blocks, no flushing — exactly what a fabric worker's sudden
    death looks like to the rest of the fleet.  Deterministic: the kill
    lands after precisely ``kill_after`` completed data references, so
    a chaos scenario dies at the same record every run.
    """

    def __init__(self, inner: CoherenceProtocol, kill_after: int) -> None:
        if kill_after < 1:
            raise ConfigurationError(
                f"kill_after must be >= 1, got {kill_after}"
            )
        self.inner = inner
        self.kill_after = kill_after
        self.refs_seen = 0

    def __getattr__(self, attribute):
        if attribute.startswith("__") or "inner" not in self.__dict__:
            raise AttributeError(attribute)
        return getattr(self.inner, attribute)

    def _maybe_kill(self) -> None:
        self.refs_seen += 1
        if self.refs_seen == self.kill_after:
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)

    def on_read(self, cache: int, block: int, first_ref: bool):
        result = self.inner.on_read(cache, block, first_ref)
        self._maybe_kill()
        return result

    def on_write(self, cache: int, block: int, first_ref: bool):
        result = self.inner.on_write(cache, block, first_ref)
        self._maybe_kill()
        return result


def inject_illegal_dirty_copies(
    protocol: CoherenceProtocol, block: int, caches: Sequence[int] = (0, 1)
) -> None:
    """Plant dirty copies of *block* behind the protocol's back.

    Two dirty copies violate single-writer for every protocol; for WTI
    even one violates write-through purity.  The protocol's directory is
    deliberately left stale, so directory-agreement checks fire too.
    """
    for cache in caches:
        if cache < protocol.num_caches:
            protocol._caches[cache].put(block, LineState.DIRTY)


class FaultInjector:
    """Deterministic manufacturer of corrupt traces and flaky readers.

    Args:
        seed: RNG seed; equal seeds produce identical corruption.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    # -- record-level corruption ---------------------------------------

    def bit_flip_address(self, record: TraceRecord, bit: int | None = None) -> TraceRecord:
        """A copy of *record* with one address bit flipped (silent corruption)."""
        if bit is None:
            bit = self._rng.randrange(0, 32)
        from dataclasses import replace

        return replace(record, address=record.address ^ (1 << bit))

    # -- text-trace corruption -----------------------------------------

    def corrupt_text_trace(
        self,
        path: str | Path,
        mode: str = "garbage",
        line_index: int | None = None,
    ) -> int:
        """Corrupt one record line of a text trace file in place.

        Args:
            mode: one of :data:`TEXT_CORRUPTION_MODES`.
            line_index: 0-based index among *record* lines (comments and
                blanks are never touched); random when omitted.

        Returns:
            The 1-based file line number that was corrupted.
        """
        if mode not in TEXT_CORRUPTION_MODES:
            raise ConfigurationError(
                f"mode must be one of {TEXT_CORRUPTION_MODES}, got {mode!r}"
            )
        file_path = Path(path)
        lines = file_path.read_text("ascii").splitlines()
        record_lines = [
            number
            for number, line in enumerate(lines)
            if line.strip() and not line.strip().startswith("#")
        ]
        if not record_lines:
            raise ConfigurationError(f"{path} contains no record lines to corrupt")
        if line_index is None:
            target = self._rng.choice(record_lines)
        else:
            target = record_lines[line_index]
        lines[target] = self._corrupt_line(lines[target], mode)
        file_path.write_text("\n".join(lines) + "\n", "ascii")
        return target + 1

    def _corrupt_line(self, line: str, mode: str) -> str:
        fields = line.split()
        if mode == "garbage":
            return "!! corrupted record !!"
        if mode == "bad-address":
            fields[3] = "0xZZZZ"
        elif mode == "bad-type":
            fields[2] = "q"
        elif mode == "bogus-flag":
            fields = fields[:4] + ["x"]
        return " ".join(fields)

    # -- binary-trace corruption ---------------------------------------

    def truncate_binary_trace(self, path: str | Path, keep_bytes: int) -> None:
        """Cut a binary trace file down to its first *keep_bytes* bytes.

        Truncating inside the header or mid-record must surface as
        :class:`~repro.errors.TraceFormatError` on read.
        """
        file_path = Path(path)
        data = file_path.read_bytes()
        file_path.write_bytes(data[:keep_bytes])

    def corrupt_binary_type_code(self, path: str | Path, record_index: int = 0) -> None:
        """Overwrite one packed record's reference-type byte with 0xFF."""
        from repro.trace.io import _HEADER, _RECORD

        file_path = Path(path)
        data = bytearray(file_path.read_bytes())
        # Type code is the 5th byte of the <HHBBHQ> record layout.
        offset = _HEADER.size + record_index * _RECORD.size + 4
        if offset >= len(data):
            raise ConfigurationError(
                f"record {record_index} is out of range for {path}"
            )
        data[offset] = 0xFF
        file_path.write_bytes(bytes(data))

    # -- streaming and protocol faults ---------------------------------

    def flaky_trace(
        self, trace: Trace, fail_after: int | None = None, fail_times: int = 1
    ) -> FlakyTrace:
        """Wrap *trace* so streaming fails transiently *fail_times* times."""
        if fail_after is None:
            fail_after = self._rng.randrange(0, max(1, len(trace)))
        return FlakyTrace(trace, fail_after=fail_after, fail_times=fail_times)

    def saboteur(
        self,
        inner: CoherenceProtocol,
        trigger_after: int | None = None,
        mode: str = "illegal-state",
        failures_left: int = 1,
    ) -> SaboteurProtocol:
        """Wrap a protocol instance to misbehave after N data references."""
        if trigger_after is None:
            trigger_after = self._rng.randrange(1, 1000)
        return SaboteurProtocol(
            inner, trigger_after, mode=mode, failures_left=failures_left
        )

    def process_killer(
        self, inner: CoherenceProtocol, kill_after: int | None = None
    ) -> ProcessKiller:
        """Wrap a protocol to SIGKILL its own process after N data refs."""
        if kill_after is None:
            kill_after = self._rng.randrange(1, 1000)
        return ProcessKiller(inner, kill_after)

    def kill_plan(
        self, workers: int, max_lease: int = 3, max_refs: int = 500
    ) -> tuple[int, int, int]:
        """Pick a deterministic (worker, lease index, ref count) kill point.

        The fabric chaos harness uses this to decide *which* worker of a
        fleet dies, on which of its leases, and after how many completed
        data references — all drawn from the injector's seeded RNG, so a
        chaos scenario is exactly reproducible from its seed.
        """
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        return (
            self._rng.randrange(0, workers),
            self._rng.randrange(0, max_lease),
            self._rng.randrange(1, max_refs + 1),
        )
