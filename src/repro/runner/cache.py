"""On-disk result cache: skip cells whose outcome is already known.

A sweep cell is fully determined by *what* is simulated — the trace
content, the scheme and its options, and the simulator configuration
(sharer key, block size) — not by trace file names or in-memory
representation.  :class:`ResultCache` therefore keys each stored
:class:`~repro.core.result.SimulationResult` by a SHA-256 over exactly
those inputs:

* the **trace fingerprint** (:func:`trace_fingerprint`) hashes one
  canonical line per record, so a record-backed
  :class:`~repro.trace.stream.Trace` and its
  :class:`~repro.trace.columnar.ColumnarTrace` conversion — or the same
  trace loaded from text and binary files — fingerprint identically,
  while any changed record invalidates the key;
* the **scheme** is the registry name plus its canonical (key-sorted
  JSON) option dict; protocol *factories* are opaque callables with no
  content identity, so factory cells are never cached;
* the **simulator configuration** contributes the sharer key and block
  size, the two knobs that change measured results.

Entries are the same JSON payloads the checkpoint manifest uses
(:func:`~repro.runner.checkpoint.result_to_json`), written atomically.
A corrupt or truncated entry is treated as a miss, never an error — the
cell re-simulates and the bad file is *quarantined* (moved into a
``quarantine/`` subdirectory, preserved for inspection rather than
silently deleted).  The cache can only skip work, not break a sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.core.experiment import parse_scheme
from repro.core.result import SimulationResult
from repro.core.simulator import Simulator
from repro.errors import CheckpointError
from repro.runner.checkpoint import result_from_json, result_to_json
from repro.trace.fingerprint import FP_HEADER as _FP_HEADER  # noqa: F401
from repro.trace.fingerprint import fingerprint_trace

#: Bump when the cached payload or key material changes incompatibly.
CACHE_VERSION = 1


def trace_fingerprint(trace: Any) -> str:
    """Content hash of a trace, independent of its representation.

    Hashes one canonical ``cpu pid type address flags`` line per record
    in order.  The trace's name and description are deliberately
    excluded: two differently-named traces with identical records are
    the same workload.  Delegates to the incremental
    :class:`~repro.trace.fingerprint.TraceHasher`, which record,
    columnar, and chunked representations all feed identically — the
    digests are byte-compatible with every previously written cache.
    """
    return fingerprint_trace(trace)


def cache_key(
    scheme_spec: Any, simulator: Simulator, trace_fp: str
) -> str | None:
    """The cache key for one cell, or ``None`` when it is uncacheable.

    Factory scheme specs (arbitrary callables) and option dicts that are
    not JSON-serializable have no stable content identity and return
    ``None`` — such cells always simulate.
    """
    if callable(scheme_spec) and not isinstance(scheme_spec, (str, tuple)):
        return None
    name, options = parse_scheme(scheme_spec)
    try:
        canonical_options = json.dumps(options, sort_keys=True)
    except (TypeError, ValueError):
        return None
    material = json.dumps(
        {
            "version": CACHE_VERSION,
            "scheme": name,
            "options": canonical_options,
            "sharer_key": simulator.sharer_key,
            "block_bytes": simulator.block_mapper.block_bytes,
            "trace": trace_fp,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """One directory of content-addressed simulation results.

    Args:
        directory: cache location; created if missing.  Safe to share
            between sweeps — keys collide only for identical cells.
    """

    #: Subdirectory corrupt entries are moved into (never re-read).
    QUARANTINE_DIR = "quarantine"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is preserved but never re-read."""
        self.quarantined += 1
        quarantine = self.directory / self.QUARANTINE_DIR
        try:
            quarantine.mkdir(exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            # Could not move it (permissions, races): drop it instead so
            # the slot is rewritable; a lingering corrupt file is still
            # only ever a miss.
            try:
                path.unlink()
            except OSError:
                pass

    def get(self, key: str) -> SimulationResult | None:
        """The cached result for *key*, or ``None`` on any kind of miss."""
        payload = self.get_json(key)
        if payload is None:
            return None
        try:
            return result_from_json(payload)
        except Exception:
            # Valid JSON that is not a result payload: same treatment
            # as any other corrupt entry.
            self.hits -= 1
            self.misses += 1
            self._quarantine(self._path_for(key))
            return None

    def get_json(self, key: str) -> dict[str, Any] | None:
        """The cached *serialized* result for *key*, or ``None`` on a miss.

        The JSON-level twin of :meth:`get`, for callers that transport
        payloads rather than live results (fabric workers, the service)
        — it skips the deserialize/reserialize round trip entirely.
        """
        path = self._path_for(key)
        try:
            payload = json.loads(path.read_text("utf-8"))
            result_json = payload["result"]
            if payload.get("version") != CACHE_VERSION:
                raise CheckpointError("cache entry version mismatch")
            if not isinstance(result_json, dict):
                raise CheckpointError("cache entry result is not an object")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, CheckpointError):
            # A corrupt/truncated entry is a miss: quarantine it and let
            # the caller re-simulate (the slot is free to be rewritten).
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return result_json

    def put(self, key: str, result: SimulationResult) -> None:
        """Store *result* under *key* (atomic; best-effort on I/O errors)."""
        self.put_json(key, result_to_json(result))

    def put_json(self, key: str, result_json: dict[str, Any]) -> None:
        """Store an already-serialized result payload under *key*."""
        payload = json.dumps(
            {"version": CACHE_VERSION, "key": key, "result": result_json},
            indent=1,
            sort_keys=True,
        )
        path = self._path_for(key)
        tmp = path.with_name(path.name + ".tmp")
        try:
            tmp.write_text(payload, "utf-8")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
