"""Resilient experiment runner: the fault-tolerance layer.

This subpackage sits between the simulator core and the CLI/analysis
layers.  It makes long (scheme × trace) sweeps survive the real world:

* :mod:`repro.runner.resilient` — error-isolated cells with retry +
  exponential backoff; failures become
  :class:`~repro.core.experiment.CellFailure` records instead of
  aborting the sweep.
* :mod:`repro.runner.checkpoint` — versioned checkpoint/resume:
  completed cells in a JSON manifest, the in-progress cell as a binary
  mid-trace snapshot.
* :mod:`repro.runner.faults` — fault injection used to *prove* the
  containment story: corrupt records, truncated binary traces, flaky
  readers, illegal protocol states.
* :mod:`repro.runner.parallel` — :class:`ParallelExecutor` fans
  independent (scheme × trace) cells across a process pool while
  keeping retry, containment, and checkpoint semantics.
* :mod:`repro.runner.cache` — :class:`ResultCache`, an on-disk cache of
  simulation results keyed by (trace fingerprint, scheme + options,
  simulator config).

See ``docs/ROBUSTNESS.md`` for the fault model and guarantees, and
``docs/PERFORMANCE.md`` for the parallel/caching design.
"""

from repro.runner.cache import ResultCache, cache_key, trace_fingerprint
from repro.runner.checkpoint import (
    CheckpointManager,
    result_from_json,
    result_to_json,
)
from repro.runner.parallel import ParallelExecutor
from repro.runner.faults import (
    FaultInjector,
    FlakyReader,
    FlakyTrace,
    KillPoint,
    SaboteurProtocol,
    inject_illegal_dirty_copies,
)
from repro.runner.resilient import (
    DEFAULT_CHECKPOINT_EVERY,
    ResilientExperiment,
    RetryPolicy,
    build_protocol_for_cell,
    num_caches_for,
    run_resilient_sweep,
    spec_key,
)

__all__ = [
    "CheckpointManager",
    "ParallelExecutor",
    "ResultCache",
    "cache_key",
    "trace_fingerprint",
    "result_to_json",
    "result_from_json",
    "build_protocol_for_cell",
    "num_caches_for",
    "FaultInjector",
    "FlakyReader",
    "FlakyTrace",
    "KillPoint",
    "SaboteurProtocol",
    "inject_illegal_dirty_copies",
    "ResilientExperiment",
    "RetryPolicy",
    "run_resilient_sweep",
    "spec_key",
    "DEFAULT_CHECKPOINT_EVERY",
]
