"""Resilient experiment runner: the fault-tolerance layer.

This subpackage sits between the simulator core and the CLI/analysis
layers.  Execution itself lives in :mod:`repro.engine`; what remains
here are the runner's durable artifacts and test instruments:

* :mod:`repro.runner.resilient` — :class:`ResilientExperiment`, the
  sweep-level entry point (a thin configuration shell over the engine):
  error-isolated cells with retry + exponential backoff; failures
  become :class:`~repro.core.experiment.CellFailure` records instead of
  aborting the sweep.
* :mod:`repro.runner.checkpoint` — versioned checkpoint/resume:
  completed cells in a JSON manifest, the in-progress cell as a binary
  mid-trace snapshot.
* :mod:`repro.runner.faults` — fault injection used to *prove* the
  containment story: corrupt records, truncated binary traces, flaky
  readers, illegal protocol states.
* :mod:`repro.runner.cache` — :class:`ResultCache`, an on-disk cache of
  simulation results keyed by (trace fingerprint, scheme + options,
  simulator config).
* :mod:`repro.runner.parallel` — deprecated shim; the pool executor is
  now :class:`repro.engine.backends.ProcessPoolBackend`.

Names are resolved lazily so that engine modules can import runner
submodules (cache, checkpoint) without forcing the whole runner — and
so the deprecated parallel aliases only warn when actually used.

See ``docs/ARCHITECTURE.md`` for the engine layering,
``docs/ROBUSTNESS.md`` for the fault model and guarantees, and
``docs/PERFORMANCE.md`` for the parallel/caching design.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any

#: Public name -> providing module (resolved on first attribute access).
_EXPORTS = {
    "ResultCache": "repro.runner.cache",
    "cache_key": "repro.runner.cache",
    "trace_fingerprint": "repro.runner.cache",
    "CheckpointManager": "repro.runner.checkpoint",
    "result_from_json": "repro.runner.checkpoint",
    "result_to_json": "repro.runner.checkpoint",
    "ParallelExecutor": "repro.runner.parallel",  # deprecated; warns
    "FaultInjector": "repro.runner.faults",
    "FlakyReader": "repro.runner.faults",
    "FlakyTrace": "repro.runner.faults",
    "KillPoint": "repro.runner.faults",
    "SaboteurProtocol": "repro.runner.faults",
    "inject_illegal_dirty_copies": "repro.runner.faults",
    "DEFAULT_CHECKPOINT_EVERY": "repro.runner.resilient",
    "ResilientExperiment": "repro.runner.resilient",
    "RetryPolicy": "repro.runner.resilient",
    "build_protocol_for_cell": "repro.runner.resilient",
    "num_caches_for": "repro.runner.resilient",
    "run_resilient_sweep": "repro.runner.resilient",
    "spec_key": "repro.runner.resilient",
}

__all__ = [
    "CheckpointManager",
    "ParallelExecutor",
    "ResultCache",
    "cache_key",
    "trace_fingerprint",
    "result_to_json",
    "result_from_json",
    "build_protocol_for_cell",
    "num_caches_for",
    "FaultInjector",
    "FlakyReader",
    "FlakyTrace",
    "KillPoint",
    "SaboteurProtocol",
    "inject_illegal_dirty_copies",
    "ResilientExperiment",
    "RetryPolicy",
    "run_resilient_sweep",
    "spec_key",
    "DEFAULT_CHECKPOINT_EVERY",
]


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    if name != "ParallelExecutor":  # keep the deprecated alias warning live
        globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
