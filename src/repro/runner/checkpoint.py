"""Checkpoint/resume for long sweeps.

A checkpoint is a directory holding two artifacts:

* ``manifest.json`` — a versioned JSON snapshot of every *completed*
  (scheme, trace) cell (full :class:`SimulationResult` payloads) plus
  recorded cell failures and an experiment fingerprint.  Human-readable
  and diff-able.
* ``cell.pkl`` — a binary snapshot of the single *in-progress* cell:
  the live protocol instance, the
  :class:`~repro.core.simulator.SimulationContext` (seen blocks, sharer
  map, record position) and the accumulated partial
  :class:`SimulationResult`, so a resumed run continues mid-trace
  rather than restarting the cell.

Both artifacts carry a magic string and format version; loading
anything that fails the compatibility check raises
:class:`~repro.errors.CheckpointError` rather than silently mixing
state from a different run.  All writes are atomic
(write-temp-then-rename), so a crash mid-save leaves the previous
snapshot intact.
"""

from __future__ import annotations

import json
import os
import pickle
from collections import Counter
from pathlib import Path
from typing import Any

from repro.core.result import SimulationResult
from repro.errors import CheckpointError
from repro.protocols.events import EventType, OpKind

MANIFEST_MAGIC = "repro-checkpoint"
MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"

CELL_STATE_MAGIC = b"RPCK"
CELL_STATE_VERSION = 1
CELL_STATE_NAME = "cell.pkl"


# ----------------------------------------------------------------------
# SimulationResult <-> JSON
# ----------------------------------------------------------------------

def result_to_json(result: SimulationResult) -> dict[str, Any]:
    """Encode a :class:`SimulationResult` as a JSON-safe dict (exact).

    ``directory_recalls`` is only emitted when nonzero so payloads from
    infinite-cache runs — and their cache keys/digests — are unchanged
    by the finite-capacity extension.
    """
    payload = {
        "scheme": result.scheme,
        "trace_name": result.trace_name,
        "total_refs": result.total_refs,
        "event_counts": {
            event.value: count for event, count in result.event_counts.items()
        },
        "op_units": {
            event.value: {kind.value: units for kind, units in counter.items()}
            for event, counter in result.op_units.items()
        },
        "bus_transactions": result.bus_transactions,
        "clean_write_histogram": {
            str(sharers): count
            for sharers, count in result.clean_write_histogram.items()
        },
        "wasted_invalidations": result.wasted_invalidations,
        "pointer_evictions": result.pointer_evictions,
    }
    if result.directory_recalls:
        payload["directory_recalls"] = result.directory_recalls
    return payload


def result_from_json(payload: dict[str, Any]) -> SimulationResult:
    """Decode :func:`result_to_json` output, bit-for-bit."""
    try:
        return SimulationResult(
            scheme=payload["scheme"],
            trace_name=payload["trace_name"],
            total_refs=payload["total_refs"],
            event_counts=Counter(
                {
                    EventType(event): count
                    for event, count in payload["event_counts"].items()
                }
            ),
            op_units={
                EventType(event): Counter(
                    {OpKind(kind): units for kind, units in counter.items()}
                )
                for event, counter in payload["op_units"].items()
            },
            bus_transactions=payload["bus_transactions"],
            clean_write_histogram=Counter(
                {
                    int(sharers): count
                    for sharers, count in payload["clean_write_histogram"].items()
                }
            ),
            wasted_invalidations=payload["wasted_invalidations"],
            pointer_evictions=payload["pointer_evictions"],
            directory_recalls=payload.get("directory_recalls", 0),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise CheckpointError(f"corrupt SimulationResult payload: {exc}") from exc


# ----------------------------------------------------------------------
# Checkpoint directory
# ----------------------------------------------------------------------

def _atomic_write_bytes(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


class CheckpointManager:
    """Owns one checkpoint directory for one sweep.

    Args:
        directory: checkpoint location; created if missing.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.directory / MANIFEST_NAME
        self._cell_path = self.directory / CELL_STATE_NAME

    def exists(self) -> bool:
        """True when a manifest has been written to this directory."""
        return self._manifest_path.is_file()

    # -- manifest ------------------------------------------------------

    def new_manifest(self, fingerprint: dict[str, Any]) -> dict[str, Any]:
        """A fresh, empty manifest for the given experiment fingerprint."""
        return {
            "magic": MANIFEST_MAGIC,
            "version": MANIFEST_VERSION,
            "fingerprint": fingerprint,
            "completed": {},
            "failures": [],
        }

    def save_manifest(self, manifest: dict[str, Any]) -> None:
        """Atomically persist the manifest."""
        payload = json.dumps(manifest, indent=1, sort_keys=True)
        _atomic_write_bytes(self._manifest_path, payload.encode("utf-8"))

    def load_manifest(self, fingerprint: dict[str, Any] | None = None) -> dict[str, Any]:
        """Load and validate the manifest.

        Args:
            fingerprint: when given, the stored experiment fingerprint
                must match exactly (same schemes, same traces); a sweep
                must never resume from another sweep's checkpoint.
        """
        if not self.exists():
            raise CheckpointError(f"no checkpoint manifest in {self.directory}")
        try:
            manifest = json.loads(self._manifest_path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint manifest: {exc}") from exc
        if not isinstance(manifest, dict) or manifest.get("magic") != MANIFEST_MAGIC:
            raise CheckpointError(
                f"{self._manifest_path} is not a repro checkpoint manifest"
            )
        if manifest.get("version") != MANIFEST_VERSION:
            raise CheckpointError(
                f"checkpoint manifest version {manifest.get('version')!r} is not "
                f"supported (expected {MANIFEST_VERSION})"
            )
        if fingerprint is not None and manifest.get("fingerprint") != fingerprint:
            raise CheckpointError(
                "checkpoint belongs to a different experiment: "
                f"stored fingerprint {manifest.get('fingerprint')!r} != "
                f"requested {fingerprint!r}"
            )
        return manifest

    # -- in-progress cell state ----------------------------------------

    def save_cell_state(self, state: dict[str, Any]) -> None:
        """Atomically snapshot the in-progress cell (binary, versioned)."""
        blob = (
            CELL_STATE_MAGIC
            + bytes([CELL_STATE_VERSION])
            + pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        )
        _atomic_write_bytes(self._cell_path, blob)

    def load_cell_state(self) -> dict[str, Any] | None:
        """The in-progress cell snapshot, or None when no cell was cut short."""
        if not self._cell_path.is_file():
            return None
        blob = self._cell_path.read_bytes()
        if len(blob) < len(CELL_STATE_MAGIC) + 1 or not blob.startswith(CELL_STATE_MAGIC):
            raise CheckpointError(
                f"{self._cell_path} is not a repro cell snapshot (bad magic)"
            )
        version = blob[len(CELL_STATE_MAGIC)]
        if version != CELL_STATE_VERSION:
            raise CheckpointError(
                f"cell snapshot version {version} is not supported "
                f"(expected {CELL_STATE_VERSION})"
            )
        try:
            state = pickle.loads(blob[len(CELL_STATE_MAGIC) + 1 :])
        except Exception as exc:  # pickle raises a wide variety here
            raise CheckpointError(f"corrupt cell snapshot: {exc}") from exc
        if not isinstance(state, dict):
            raise CheckpointError("corrupt cell snapshot: payload is not a dict")
        return state

    def clear_cell_state(self) -> None:
        """Drop the in-progress snapshot (the cell completed or failed)."""
        try:
            self._cell_path.unlink()
        except FileNotFoundError:
            pass
