"""Error-isolated, fault-tolerant experiment sweeps.

:class:`ResilientExperiment` runs the same (scheme × trace) grid as
:class:`~repro.core.experiment.Experiment`, but each cell executes in a
sandboxed unit:

* transient failures (:class:`~repro.errors.TransientError`, OSError)
  are retried with exponential backoff under a
  :class:`~repro.engine.policies.RetryPolicy`;
* permanent failures are contained as
  :class:`~repro.core.experiment.CellFailure` records in the returned
  :class:`~repro.core.experiment.ExperimentResult` — one corrupt trace
  or one protocol driven into an illegal state never discards the rest
  of the sweep (``strict=True`` restores fail-fast semantics);
* with a :class:`~repro.runner.checkpoint.CheckpointManager` attached,
  completed cells and the in-progress cell's mid-trace state are
  snapshotted every ``checkpoint_every`` records, so an interrupted run
  resumes where it stopped and reproduces the uninterrupted result
  bit-for-bit (the existing windowed-simulation context carry-over
  guarantees segment-invariance).

Scheme specs accept, beyond registry names and ``(name, options)``
pairs, a *factory* — any callable ``factory(num_caches) -> protocol``.
Factories are how fault-injection tests smuggle sabotaged protocols
into a sweep; give the callable a ``scheme_key`` attribute to control
its result key.

Since the :mod:`repro.engine` consolidation this module is a thin
configuration shell: it normalizes its arguments into an
:class:`~repro.engine.plan.ExecutionPlan` and delegates execution to
:class:`~repro.engine.core.Engine`, which owns the (single) retry loop,
checkpoint-manifest writer, and result-cache path shared with the CLI
and the simulation service.  The public surface here — including the
``RetryPolicy`` / ``spec_key`` / ``build_protocol_for_cell`` /
``num_caches_for`` re-exports — is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.experiment import ExperimentResult
from repro.core.simulator import Simulator
from repro.engine.core import Engine, rehydrate_failure
from repro.engine.observer import EngineObserver
from repro.engine.plan import (
    ExecutionPlan,
    SchemeSpec,
    build_protocol_for_cell,
    num_caches_for,
    spec_key,
)
from repro.engine.policies import DEFAULT_CHECKPOINT_EVERY, RetryPolicy
from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import CheckpointManager
from repro.trace.stream import Trace

# Legacy private alias (pre-engine name for the strict-mode rehydrator).
_rehydrate_failure = rehydrate_failure

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "ResilientExperiment",
    "RetryPolicy",
    "SchemeSpec",
    "build_protocol_for_cell",
    "num_caches_for",
    "run_resilient_sweep",
    "spec_key",
]


@dataclass
class ResilientExperiment:
    """A fault-tolerant (scheme × trace) sweep.

    Args:
        traces: input traces; cells are visited scheme-major.
        schemes: registry names, ``(name, options)`` pairs, or protocol
            factories ``factory(num_caches) -> protocol``.
        simulator: configured simulator (paper defaults when omitted).
        retry: transient-failure retry policy.
        strict: re-raise the first permanent cell failure instead of
            recording it and continuing.
        checkpoint: attach a checkpoint directory to snapshot progress.
        checkpoint_every: records between mid-cell snapshots.
        resume: continue from the checkpoint directory's manifest
            instead of starting over (requires ``checkpoint``).
        jobs: worker processes for the sweep.  ``1`` (the default) runs
            cells serially in-process, exactly as before; ``> 1`` fans
            independent cells across a process pool via
            :class:`~repro.engine.backends.ProcessPoolBackend`.  Retry,
            failure containment, and the checkpoint manifest behave the
            same either way; mid-cell snapshots are a serial-only
            refinement (parallel resume is cell-granular), and
            ``strict`` parallel sweeps raise the first failure *in
            sweep order* after all in-flight cells finish.
        batch: cells per pool dispatch when ``jobs > 1``; ``None``
            (the default) auto-sizes to roughly four batches per
            worker.  Ignored for serial sweeps.
        result_cache: on-disk content-addressed cache
            (:class:`~repro.runner.cache.ResultCache`); cells whose
            (trace fingerprint, scheme, options, simulator config) key
            is already cached are skipped entirely.
        observer: optional :class:`~repro.engine.observer.EngineObserver`
            receiving cell start/retry/finish and cache hit/miss events.
    """

    traces: Sequence[Trace]
    schemes: Sequence[SchemeSpec]
    simulator: Simulator | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    strict: bool = False
    checkpoint: CheckpointManager | None = None
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    resume: bool = False
    jobs: int = 1
    batch: int | None = None
    result_cache: ResultCache | None = None
    observer: EngineObserver | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.resume and self.checkpoint is None:
            raise ConfigurationError("resume requires a checkpoint directory")
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.batch is not None and self.batch < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {self.batch}")

    def plan(self) -> ExecutionPlan:
        """The normalized sweep this experiment describes."""
        return ExecutionPlan(
            traces=self.traces,
            schemes=self.schemes,
            simulator=self.simulator or Simulator(),
        )

    def engine(self) -> Engine:
        """The configured engine this experiment delegates to."""
        kwargs = {} if self.observer is None else {"observer": self.observer}
        return Engine(
            retry=self.retry,
            strict=self.strict,
            checkpoint=self.checkpoint,
            checkpoint_every=self.checkpoint_every,
            resume=self.resume,
            jobs=self.jobs,
            batch=self.batch,
            result_cache=self.result_cache,
            **kwargs,
        )

    def run(
        self, progress: Callable[[str, str], None] | None = None
    ) -> ExperimentResult:
        """Run every cell, containing failures; returns partial results.

        Args:
            progress: optional callback invoked with (scheme key, trace
                name) before each cell.
        """
        return self.engine().run(self.plan(), progress=progress)


def run_resilient_sweep(
    traces: Sequence[Trace],
    schemes: Sequence[SchemeSpec] = ("dir1nb", "wti", "dir0b", "dragon"),
    *,
    simulator: Simulator | None = None,
    retry: RetryPolicy | None = None,
    strict: bool = False,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = False,
    jobs: int = 1,
    batch: int | None = None,
    result_cache_dir: str | None = None,
    progress: Callable[[str, str], None] | None = None,
) -> ExperimentResult:
    """One-call error-isolated sweep (the paper's grid, fault-tolerant)."""
    experiment = ResilientExperiment(
        traces=list(traces),
        schemes=list(schemes),
        simulator=simulator,
        retry=retry or RetryPolicy(),
        strict=strict,
        checkpoint=CheckpointManager(checkpoint_dir) if checkpoint_dir else None,
        checkpoint_every=checkpoint_every,
        resume=resume,
        jobs=jobs,
        batch=batch,
        result_cache=ResultCache(result_cache_dir) if result_cache_dir else None,
    )
    return experiment.run(progress=progress)
