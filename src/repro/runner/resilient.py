"""Error-isolated, fault-tolerant experiment sweeps.

:class:`ResilientExperiment` runs the same (scheme × trace) grid as
:class:`~repro.core.experiment.Experiment`, but each cell executes in a
sandboxed unit:

* transient failures (:class:`~repro.errors.TransientError`, OSError)
  are retried with exponential backoff under a :class:`RetryPolicy`;
* permanent failures are contained as
  :class:`~repro.core.experiment.CellFailure` records in the returned
  :class:`~repro.core.experiment.ExperimentResult` — one corrupt trace
  or one protocol driven into an illegal state never discards the rest
  of the sweep (``strict=True`` restores fail-fast semantics);
* with a :class:`~repro.runner.checkpoint.CheckpointManager` attached,
  completed cells and the in-progress cell's mid-trace state are
  snapshotted every ``checkpoint_every`` records, so an interrupted run
  resumes where it stopped and reproduces the uninterrupted result
  bit-for-bit (the existing windowed-simulation context carry-over
  guarantees segment-invariance).

Scheme specs accept, beyond registry names and ``(name, options)``
pairs, a *factory* — any callable ``factory(num_caches) -> protocol``.
Factories are how fault-injection tests smuggle sabotaged protocols
into a sweep; give the callable a ``scheme_key`` attribute to control
its result key.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.experiment import (
    CellFailure,
    ExperimentResult,
    parse_scheme,
    scheme_key,
)
from repro.core.result import SimulationResult, merge_results
from repro.core.simulator import SimulationContext, Simulator
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    ReproError,
    TransientError,
)
from repro.protocols.base import CoherenceProtocol
from repro.protocols.registry import make_protocol
from repro.runner.cache import ResultCache, cache_key, trace_fingerprint
from repro.runner.checkpoint import (
    CheckpointManager,
    result_from_json,
    result_to_json,
)
from repro.trace.stream import Trace

#: A registry name, a (name, options) pair, or a protocol factory.
SchemeSpec = Any

#: Records simulated between consecutive checkpoint snapshots.
DEFAULT_CHECKPOINT_EVERY = 10_000


@dataclass
class RetryPolicy:
    """Retry-with-exponential-backoff configuration for one cell.

    Attributes:
        max_attempts: total tries per cell (1 = no retry).
        backoff_base: delay before the first retry, in seconds.
        backoff_factor: multiplier applied per subsequent retry.
        backoff_max: upper bound on any single delay.
        retryable: exception classes worth retrying; anything else is
            permanent.
        sleep: the delay function — injectable so tests (and dry runs)
            never actually block.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    retryable: tuple[type[BaseException], ...] = (TransientError, OSError)
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, failed_attempts: int) -> float:
        """Backoff delay after *failed_attempts* consecutive failures (>= 1)."""
        raw = self.backoff_base * self.backoff_factor ** (failed_attempts - 1)
        return min(raw, self.backoff_max)

    def is_retryable(self, exc: BaseException) -> bool:
        """True when *exc* is a transient failure worth another attempt."""
        return isinstance(exc, self.retryable)

    def backoff(self, failed_attempts: int) -> None:
        """Sleep the appropriate delay after a failure."""
        self.sleep(self.delay(failed_attempts))


def num_caches_for(simulator: Simulator, trace: Trace) -> int:
    """Machine size for one cell: one cache per sharer in the trace."""
    sharers = trace.pids if simulator.sharer_key == "pid" else trace.cpus
    return max(1, len(sharers))


def build_protocol_for_cell(
    simulator: Simulator, spec: SchemeSpec, trace: Trace
) -> CoherenceProtocol:
    """Build the protocol instance for one (spec, trace) cell.

    Module-level so parallel workers (:mod:`repro.runner.parallel`) run
    exactly the same cell-construction code as the serial runner.
    """
    num_caches = num_caches_for(simulator, trace)
    if callable(spec) and not isinstance(spec, (str, tuple)):
        return spec(num_caches)
    name, options = parse_scheme(spec)
    return make_protocol(name, num_caches, **options)


def _rehydrate_failure(payload: dict[str, Any]) -> Exception:
    """Reconstruct a worker-reported failure as a raisable exception.

    Used by ``strict`` parallel sweeps: the original exception object
    never crosses the process boundary, so the category name is mapped
    back to a class from :mod:`repro.errors` (or builtins), falling back
    to :class:`~repro.errors.ReproError`.
    """
    import builtins

    from repro import errors as errors_module

    category = payload.get("category", "ReproError")
    cls = getattr(errors_module, category, None) or getattr(builtins, category, None)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        cls = ReproError
    try:
        return cls(payload.get("message", ""))
    except Exception:
        return ReproError(f"{category}: {payload.get('message', '')}")


def spec_key(spec: SchemeSpec) -> str:
    """The result key a scheme spec will be reported under."""
    if callable(spec) and not isinstance(spec, (str, tuple)):
        key = getattr(spec, "scheme_key", None)
        if key:
            return str(key)
        return getattr(spec, "__name__", type(spec).__name__)
    name, options = parse_scheme(spec)
    return scheme_key(name, options)


@dataclass
class ResilientExperiment:
    """A fault-tolerant (scheme × trace) sweep.

    Args:
        traces: input traces; cells are visited scheme-major.
        schemes: registry names, ``(name, options)`` pairs, or protocol
            factories ``factory(num_caches) -> protocol``.
        simulator: configured simulator (paper defaults when omitted).
        retry: transient-failure retry policy.
        strict: re-raise the first permanent cell failure instead of
            recording it and continuing.
        checkpoint: attach a checkpoint directory to snapshot progress.
        checkpoint_every: records between mid-cell snapshots.
        resume: continue from the checkpoint directory's manifest
            instead of starting over (requires ``checkpoint``).
        jobs: worker processes for the sweep.  ``1`` (the default) runs
            cells serially in-process, exactly as before; ``> 1`` fans
            independent cells across a process pool via
            :class:`~repro.runner.parallel.ParallelExecutor`.  Retry,
            failure containment, and the checkpoint manifest behave the
            same either way; mid-cell snapshots are a serial-only
            refinement (parallel resume is cell-granular), and
            ``strict`` parallel sweeps raise the first failure *in
            sweep order* after all in-flight cells finish.
        result_cache: on-disk content-addressed cache
            (:class:`~repro.runner.cache.ResultCache`); cells whose
            (trace fingerprint, scheme, options, simulator config) key
            is already cached are skipped entirely.
    """

    traces: Sequence[Trace]
    schemes: Sequence[SchemeSpec]
    simulator: Simulator | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    strict: bool = False
    checkpoint: CheckpointManager | None = None
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    resume: bool = False
    jobs: int = 1
    result_cache: ResultCache | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.resume and self.checkpoint is None:
            raise ConfigurationError("resume requires a checkpoint directory")
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        # Per-run cache of trace-content fingerprints (id(trace) -> hex).
        self._fingerprints: dict[int, str] = {}

    # ------------------------------------------------------------------

    def run(
        self, progress: Callable[[str, str], None] | None = None
    ) -> ExperimentResult:
        """Run every cell, containing failures; returns partial results.

        Args:
            progress: optional callback invoked with (scheme key, trace
                name) before each cell.
        """
        if not self.traces:
            raise ConfigurationError("experiment needs at least one trace")
        if not self.schemes:
            raise ConfigurationError("experiment needs at least one scheme")
        simulator = self.simulator or Simulator()

        outcome = ExperimentResult()
        manifest = self._prepare_checkpoint(simulator, outcome)
        self._fingerprints = {}

        cells: list[tuple[SchemeSpec, str, Trace]] = []
        for spec in self.schemes:
            key = spec_key(spec)
            for trace in self.traces:
                if trace.name in outcome.results.get(key, {}):
                    continue  # restored from the checkpoint manifest
                cells.append((spec, key, trace))

        if self.jobs > 1:
            self._run_parallel(simulator, cells, outcome, manifest, progress)
            return outcome

        for spec, key, trace in cells:
            if progress is not None:
                progress(key, trace.name)
            self._run_cell_guarded(simulator, spec, key, trace, outcome, manifest)
        return outcome

    # ------------------------------------------------------------------
    # Result cache plumbing
    # ------------------------------------------------------------------

    def _cell_cache_key(
        self, simulator: Simulator, spec: SchemeSpec, trace: Trace
    ) -> str | None:
        """The cell's content-addressed cache key, or None if uncacheable.

        Any failure here (a corrupt lazy trace raising mid-fingerprint,
        unpicklable options) quietly disables caching for the cell; the
        cell then simulates normally and its errors get the ordinary
        containment treatment.
        """
        if self.result_cache is None:
            return None
        try:
            fingerprint = self._fingerprints.get(id(trace))
            if fingerprint is None:
                fingerprint = trace_fingerprint(trace)
                self._fingerprints[id(trace)] = fingerprint
            return cache_key(spec, simulator, fingerprint)
        except Exception:
            return None

    def _cache_lookup(
        self, simulator: Simulator, spec: SchemeSpec, key: str, trace: Trace
    ) -> SimulationResult | None:
        cache_id = self._cell_cache_key(simulator, spec, trace)
        if cache_id is None:
            return None
        result = self.result_cache.get(cache_id)
        if result is not None:
            # Entries are content-addressed; report under this sweep's
            # labels regardless of how the storing sweep named things.
            result.scheme = key
            result.trace_name = trace.name
        return result

    def _cache_store(
        self,
        simulator: Simulator,
        spec: SchemeSpec,
        trace: Trace,
        result: SimulationResult,
    ) -> None:
        cache_id = self._cell_cache_key(simulator, spec, trace)
        if cache_id is not None:
            self.result_cache.put(cache_id, result)

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------

    def _run_parallel(
        self,
        simulator: Simulator,
        cells: list[tuple[SchemeSpec, str, Trace]],
        outcome: ExperimentResult,
        manifest: dict[str, Any] | None,
        progress: Callable[[str, str], None] | None,
    ) -> None:
        """Fan the pending cells across a process pool.

        Cache hits are resolved in the parent before dispatch; computed
        results stream back as JSON payloads and are checkpointed as
        they complete, but ``outcome`` is assembled in sweep order so a
        parallel run is indistinguishable from a serial one.
        """
        from repro.runner.parallel import ParallelExecutor

        if manifest is not None:
            # Mid-cell snapshots are serial-only; a stale one (e.g. from
            # an interrupted serial run) cannot seed a pool worker.
            self.checkpoint.clear_cell_state()

        completed: dict[int, SimulationResult] = {}
        failures: dict[int, dict[str, Any]] = {}
        cache_hits: set[int] = set()
        pending: list[int] = []
        for index, (spec, key, trace) in enumerate(cells):
            cached = self._cache_lookup(simulator, spec, key, trace)
            if cached is not None:
                completed[index] = cached
                cache_hits.add(index)
            else:
                pending.append(index)

        if pending:
            if progress is not None:
                for index in pending:
                    _, key, trace = cells[index]
                    progress(key, trace.name)
            executor = ParallelExecutor(jobs=self.jobs, retry=self.retry)

            def on_complete(position: int, payload: dict[str, Any]) -> None:
                if manifest is None or payload["status"] != "ok":
                    return
                _, key, trace = cells[pending[position]]
                manifest["completed"].setdefault(key, {})[trace.name] = (
                    payload["result"]
                )
                self.checkpoint.save_manifest(manifest)

            outcomes = executor.run(
                simulator,
                [cells[index] for index in pending],
                on_complete=on_complete,
            )
            for position, payload in outcomes.items():
                index = pending[position]
                if payload["status"] == "ok":
                    completed[index] = result_from_json(payload["result"])
                else:
                    failures[index] = payload

        for index, (spec, key, trace) in enumerate(cells):
            if index in completed:
                result = completed[index]
                outcome.results.setdefault(key, {})[trace.name] = result
                if index not in cache_hits:
                    self._cache_store(simulator, spec, trace, result)
                if manifest is not None:
                    manifest["completed"].setdefault(key, {})[trace.name] = (
                        result_to_json(result)
                    )
                continue
            payload = failures[index]
            if self.strict:
                raise _rehydrate_failure(payload)
            failure = CellFailure(
                scheme=key,
                trace_name=trace.name,
                category=payload["category"],
                message=payload["message"],
                attempts=payload["attempts"],
            )
            outcome.record_failure(failure)
            if manifest is not None:
                manifest["failures"].append(
                    {
                        "scheme": failure.scheme,
                        "trace_name": failure.trace_name,
                        "category": failure.category,
                        "message": failure.message,
                        "attempts": failure.attempts,
                    }
                )
        if manifest is not None:
            self.checkpoint.save_manifest(manifest)

    # ------------------------------------------------------------------
    # Checkpoint plumbing
    # ------------------------------------------------------------------

    def _fingerprint(self, simulator: Simulator) -> dict[str, Any]:
        return {
            "schemes": [spec_key(spec) for spec in self.schemes],
            "traces": [trace.name for trace in self.traces],
            "sharer_key": simulator.sharer_key,
        }

    def _prepare_checkpoint(
        self, simulator: Simulator, outcome: ExperimentResult
    ) -> dict[str, Any] | None:
        if self.checkpoint is None:
            return None
        fingerprint = self._fingerprint(simulator)
        if self.resume and self.checkpoint.exists():
            manifest = self.checkpoint.load_manifest(fingerprint)
            # Restore in sweep order (the manifest JSON is key-sorted) so
            # a resumed result is indistinguishable from a fresh one.
            for spec in self.schemes:
                key = spec_key(spec)
                per_trace = manifest["completed"].get(key, {})
                for trace in self.traces:
                    if trace.name in per_trace:
                        outcome.results.setdefault(key, {})[trace.name] = (
                            result_from_json(per_trace[trace.name])
                        )
            # Previously failed cells are retried on resume; drop them.
            manifest["failures"] = []
            return manifest
        manifest = self.checkpoint.new_manifest(fingerprint)
        self.checkpoint.clear_cell_state()
        self.checkpoint.save_manifest(manifest)
        return manifest

    # ------------------------------------------------------------------
    # Cell execution
    # ------------------------------------------------------------------

    def _run_cell_guarded(
        self,
        simulator: Simulator,
        spec: SchemeSpec,
        key: str,
        trace: Trace,
        outcome: ExperimentResult,
        manifest: dict[str, Any] | None,
    ) -> None:
        cached = self._cache_lookup(simulator, spec, key, trace)
        if cached is not None:
            outcome.results.setdefault(key, {})[trace.name] = cached
            if manifest is not None:
                manifest["completed"].setdefault(key, {})[trace.name] = (
                    result_to_json(cached)
                )
                self.checkpoint.clear_cell_state()
                self.checkpoint.save_manifest(manifest)
            return

        failed_attempts = 0
        while True:
            try:
                result = self._run_cell(simulator, spec, key, trace)
            except (KeyboardInterrupt, SystemExit):
                raise  # an interrupted checkpointed run resumes later
            except Exception as exc:
                failed_attempts += 1
                if (
                    self.retry.is_retryable(exc)
                    and failed_attempts < self.retry.max_attempts
                ):
                    self.retry.backoff(failed_attempts)
                    continue
                if self.strict:
                    raise
                failure = CellFailure(
                    scheme=key,
                    trace_name=trace.name,
                    category=type(exc).__name__,
                    message=str(exc),
                    attempts=failed_attempts,
                )
                outcome.record_failure(failure)
                if manifest is not None:
                    manifest["failures"].append(
                        {
                            "scheme": failure.scheme,
                            "trace_name": failure.trace_name,
                            "category": failure.category,
                            "message": failure.message,
                            "attempts": failure.attempts,
                        }
                    )
                    self.checkpoint.clear_cell_state()
                    self.checkpoint.save_manifest(manifest)
                return

            outcome.results.setdefault(key, {})[trace.name] = result
            self._cache_store(simulator, spec, trace, result)
            if manifest is not None:
                manifest["completed"].setdefault(key, {})[trace.name] = (
                    result_to_json(result)
                )
                self.checkpoint.clear_cell_state()
                self.checkpoint.save_manifest(manifest)
            return

    def _num_caches_for(self, simulator: Simulator, trace: Trace) -> int:
        return num_caches_for(simulator, trace)

    def _build_protocol(
        self, simulator: Simulator, spec: SchemeSpec, trace: Trace
    ) -> CoherenceProtocol:
        return build_protocol_for_cell(simulator, spec, trace)

    def _run_cell(
        self, simulator: Simulator, spec: SchemeSpec, key: str, trace: Trace
    ) -> SimulationResult:
        """One attempt at one cell; fresh (or restored) state every time."""
        if self.checkpoint is None:
            protocol = self._build_protocol(simulator, spec, trace)
            result = simulator.run(trace, protocol, trace_name=trace.name)
            result.scheme = key
            return result
        return self._run_cell_checkpointed(simulator, spec, key, trace)

    def _run_cell_checkpointed(
        self, simulator: Simulator, spec: SchemeSpec, key: str, trace: Trace
    ) -> SimulationResult:
        """Run one cell window by window, snapshotting after each window.

        Always restarts from the on-disk snapshot (never in-memory
        state), so a retry after a mid-window fault resumes from the
        last consistent snapshot rather than from a tainted protocol.
        """
        state = self.checkpoint.load_cell_state()
        if (
            state is not None
            and state.get("scheme") == key
            and state.get("trace_name") == trace.name
        ):
            protocol = state["protocol"]
            context: SimulationContext = state["context"]
            accumulated: SimulationResult | None = state["accumulated"]
            position: int = state["records_done"]
            if context.records_done != position:
                raise CheckpointError(
                    f"cell snapshot inconsistent: context processed "
                    f"{context.records_done} records but snapshot claims {position}"
                )
        else:
            protocol = self._build_protocol(simulator, spec, trace)
            context = SimulationContext()
            accumulated = None
            position = 0

        records = trace.records
        total = len(trace)
        while position < total:
            segment = records[position : position + self.checkpoint_every]
            segment_result = simulator.run(
                segment, protocol, trace_name=trace.name, context=context
            )
            accumulated = (
                segment_result
                if accumulated is None
                else merge_results([accumulated, segment_result], name=trace.name)
            )
            position += len(segment)
            self.checkpoint.save_cell_state(
                {
                    "scheme": key,
                    "trace_name": trace.name,
                    "records_done": position,
                    "protocol": protocol,
                    "context": context,
                    "accumulated": accumulated,
                }
            )

        if accumulated is None:  # empty trace: still a valid (zero) result
            accumulated = SimulationResult(scheme=key, trace_name=trace.name)
        accumulated.scheme = key
        return accumulated


def run_resilient_sweep(
    traces: Sequence[Trace],
    schemes: Sequence[SchemeSpec] = ("dir1nb", "wti", "dir0b", "dragon"),
    *,
    simulator: Simulator | None = None,
    retry: RetryPolicy | None = None,
    strict: bool = False,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = False,
    jobs: int = 1,
    result_cache_dir: str | None = None,
    progress: Callable[[str, str], None] | None = None,
) -> ExperimentResult:
    """One-call error-isolated sweep (the paper's grid, fault-tolerant)."""
    experiment = ResilientExperiment(
        traces=list(traces),
        schemes=list(schemes),
        simulator=simulator,
        retry=retry or RetryPolicy(),
        strict=strict,
        checkpoint=CheckpointManager(checkpoint_dir) if checkpoint_dir else None,
        checkpoint_every=checkpoint_every,
        resume=resume,
        jobs=jobs,
        result_cache=ResultCache(result_cache_dir) if result_cache_dir else None,
    )
    return experiment.run(progress=progress)
