"""Deprecated: parallel execution moved to :mod:`repro.engine.backends`.

This module is a compatibility shim.  The process-pool executor that
used to live here — along with its picklable worker entry point — is
now the engine's :class:`~repro.engine.backends.ProcessPoolBackend`,
sharing one retry loop and one outcome format with every other
execution path.  Importing names from here still works but emits a
:class:`DeprecationWarning`:

* ``ParallelExecutor`` → :class:`repro.engine.backends.ProcessPoolBackend`
* ``execute_cell`` → :func:`repro.engine.backends.execute_cell`
* ``Cell`` → :data:`repro.engine.backends.Cell`

New code should import from :mod:`repro.engine` directly.
"""

from __future__ import annotations

import os.path
import sys
import warnings
from typing import Any

#: Old name here -> name in repro.engine.backends.
_MOVED = {
    "Cell": "Cell",
    "ParallelExecutor": "ProcessPoolBackend",
    "execute_cell": "execute_cell",
    "_picklable_retry": "_picklable_retry",
    "_run_one_attempt": "_run_one_attempt",
}

__all__ = ["Cell", "ParallelExecutor", "execute_cell"]

#: The runner package __init__ lazily re-exports ParallelExecutor; its
#: frame is shim plumbing, not the deprecation's caller.
_PACKAGE_INIT = os.path.join(os.path.dirname(__file__), "__init__.py")


def _external_stacklevel() -> int:
    """The ``warnings.warn`` stacklevel of the first real caller.

    ``from repro.runner.parallel import ParallelExecutor`` reaches
    ``__getattr__`` through the frozen import machinery (and
    ``repro.runner.ParallelExecutor`` additionally through the package
    shim), so a fixed ``stacklevel=2`` would attribute the warning to
    importlib internals.  Walk outward past those frames so the warning
    lands on the user's import/attribute line.
    """
    level = 2  # warn() is called in __getattr__; 2 == its caller
    frame = sys._getframe(2)  # that same caller frame
    while frame is not None:
        filename = frame.f_code.co_filename
        if not (
            filename.startswith("<frozen")
            or "importlib" in filename
            or filename == _PACKAGE_INIT
        ):
            break
        level += 1
        frame = frame.f_back
    return level


def __getattr__(name: str) -> Any:
    target = _MOVED.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from repro.engine import backends

    warnings.warn(
        f"repro.runner.parallel.{name} is deprecated; "
        f"use repro.engine.backends.{target} instead",
        DeprecationWarning,
        stacklevel=_external_stacklevel(),
    )
    return getattr(backends, target)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_MOVED))
