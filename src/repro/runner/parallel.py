"""Parallel sweep execution: fan (scheme × trace) cells across processes.

:class:`ParallelExecutor` runs independent sweep cells concurrently in a
``concurrent.futures.ProcessPoolExecutor``.  Each worker executes the
same per-cell unit as the serial runner — build the protocol, simulate,
retry transient failures with the sweep's backoff policy — and ships the
outcome back as the JSON payload the checkpoint manifest already uses,
so nothing protocol-shaped ever crosses the process boundary on the way
out.

Containment is preserved layer by layer:

* exceptions inside a worker are retried there and, once permanent,
  returned as failure payloads (never raised across the pool);
* a cell whose inputs do not pickle (an in-memory factory protocol, a
  fault-injection wrapper holding a live file handle) silently falls
  back to in-process execution — the pool is an optimization, not a
  requirement;
* a worker process dying outright (the pool raising
  ``BrokenProcessPool`` or the future failing for any other reason)
  re-runs that cell in the parent, where the ordinary serial containment
  applies.

Results are reported twice: an ``on_complete`` callback fires in
completion order (for incremental checkpointing), and the returned
mapping is keyed by cell index so the caller can assemble results in
deterministic sweep order regardless of scheduling.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro.core.simulator import Simulator
from repro.errors import ConfigurationError
from repro.runner.checkpoint import result_to_json
from repro.trace.stream import Trace

#: One sweep cell: (scheme spec, result key, trace).
Cell = tuple


def _run_one_attempt(
    simulator: Simulator, spec: Any, key: str, trace: Trace
) -> dict[str, Any]:
    """One protocol build + simulation; returns the transport payload."""
    from repro.runner.resilient import build_protocol_for_cell

    protocol = build_protocol_for_cell(simulator, spec, trace)
    result = simulator.run(trace, protocol, trace_name=trace.name)
    result.scheme = key
    return result_to_json(result)


def execute_cell(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one cell to a terminal outcome; never raises (module-level, picklable).

    The payload carries the simulator, the cell, and the retry policy;
    the return value is either ``{"status": "ok", "result": <json>,
    "attempts": n}`` or ``{"status": "error", "category": ...,
    "message": ..., "attempts": n}`` — the same failure shape the serial
    runner records.
    """
    simulator = payload["simulator"]
    spec = payload["spec"]
    key = payload["key"]
    trace = payload["trace"]
    retry = payload["retry"]
    failed_attempts = 0
    while True:
        try:
            result_json = _run_one_attempt(simulator, spec, key, trace)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            failed_attempts += 1
            if retry.is_retryable(exc) and failed_attempts < retry.max_attempts:
                retry.backoff(failed_attempts)
                continue
            return {
                "status": "error",
                "category": type(exc).__name__,
                "message": str(exc),
                "attempts": failed_attempts,
            }
        return {
            "status": "ok",
            "result": result_json,
            "attempts": failed_attempts + 1,
        }


def _picklable_retry(retry) -> Any:
    """The retry policy with any unpicklable sleep hook made shippable.

    Tests inject counting lambdas as ``sleep``; those cannot cross a
    process boundary, so workers fall back to the real ``time.sleep``
    with the same delay schedule.
    """
    try:
        pickle.dumps(retry)
        return retry
    except Exception:
        return replace(retry, sleep=time.sleep)


@dataclass
class ParallelExecutor:
    """Runs sweep cells across a process pool, containing every failure.

    Args:
        jobs: worker process count (>= 1; 1 still uses a pool of one,
            callers that want true serial execution skip this class).
        retry: per-cell transient-failure policy, applied *inside* each
            worker.
    """

    jobs: int
    retry: Any = field(default_factory=lambda: _default_retry())

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")

    def run(
        self,
        simulator: Simulator,
        cells: Sequence[Cell],
        on_complete: Callable[[int, dict[str, Any]], None] | None = None,
    ) -> dict[int, dict[str, Any]]:
        """Execute every cell; returns ``{cell index: outcome payload}``.

        Args:
            simulator: the configured simulator (pickled to workers).
            cells: ``(spec, key, trace)`` triples in sweep order.
            on_complete: called with ``(cell index, outcome payload)``
                as each cell finishes, in completion order — used for
                incremental checkpoint-manifest writes.
        """
        outcomes: dict[int, dict[str, Any]] = {}
        if not cells:
            return outcomes
        retry = _picklable_retry(self.retry)

        def finish(index: int, outcome: dict[str, Any]) -> None:
            outcomes[index] = outcome
            if on_complete is not None:
                on_complete(index, outcome)

        remote: list[tuple[int, dict[str, Any]]] = []
        local: list[tuple[int, dict[str, Any]]] = []
        for index, (spec, key, trace) in enumerate(cells):
            payload = {
                "simulator": simulator,
                "spec": spec,
                "key": key,
                "trace": trace,
                "retry": retry,
            }
            try:
                pickle.dumps(payload)
            except Exception:
                local.append((index, payload))
            else:
                remote.append((index, payload))

        if remote:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {
                    pool.submit(execute_cell, payload): (index, payload)
                    for index, payload in remote
                }
                for future in as_completed(futures):
                    index, payload = futures[future]
                    try:
                        outcome = future.result()
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception:
                        # The worker process died (or the pool broke):
                        # re-run this cell in the parent, where the
                        # ordinary containment semantics apply.
                        outcome = execute_cell(payload)
                    finish(index, outcome)

        for index, payload in local:
            finish(index, execute_cell(payload))
        return outcomes


def _default_retry():
    from repro.runner.resilient import RetryPolicy

    return RetryPolicy()
