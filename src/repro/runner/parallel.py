"""Deprecated: parallel execution moved to :mod:`repro.engine.backends`.

This module is a compatibility shim.  The process-pool executor that
used to live here — along with its picklable worker entry point — is
now the engine's :class:`~repro.engine.backends.ProcessPoolBackend`,
sharing one retry loop and one outcome format with every other
execution path.  Importing names from here still works but emits a
:class:`DeprecationWarning`:

* ``ParallelExecutor`` → :class:`repro.engine.backends.ProcessPoolBackend`
* ``execute_cell`` → :func:`repro.engine.backends.execute_cell`
* ``Cell`` → :data:`repro.engine.backends.Cell`

New code should import from :mod:`repro.engine` directly.
"""

from __future__ import annotations

import warnings
from typing import Any

#: Old name here -> name in repro.engine.backends.
_MOVED = {
    "Cell": "Cell",
    "ParallelExecutor": "ProcessPoolBackend",
    "execute_cell": "execute_cell",
    "_picklable_retry": "_picklable_retry",
    "_run_one_attempt": "_run_one_attempt",
}

__all__ = ["Cell", "ParallelExecutor", "execute_cell"]


def __getattr__(name: str) -> Any:
    target = _MOVED.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from repro.engine import backends

    warnings.warn(
        f"repro.runner.parallel.{name} is deprecated; "
        f"use repro.engine.backends.{target} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(backends, target)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_MOVED))
