"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing the common failure categories.

The command-line interface maps these categories onto distinct process
exit codes (see :mod:`repro.cli`): :class:`TraceFormatError` exits 3,
:class:`ProtocolError` (including :class:`InvariantViolation`) exits 4,
:class:`ConfigurationError` exits 5, :class:`ServiceError` exits 6,
:class:`ConformanceError` exits 7, and any other :class:`ReproError`
exits 2.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TraceFormatError",
    "ProtocolError",
    "InvariantViolation",
    "ConfigurationError",
    "UnknownSchemeError",
    "CheckpointError",
    "ConformanceError",
    "TransientError",
    "ServiceError",
    "JobSpecError",
    "JobNotFoundError",
    "ServiceUnavailableError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class TraceFormatError(ReproError):
    """A trace file or record stream is malformed or uses an unknown format.

    Attributes:
        path: source file the malformed data came from, when known.
        line: 1-based line number of the malformed text record, when known.
        record: 0-based record index of the malformed binary record,
            when known (the binary counterpart of ``line``).
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        line: int | None = None,
        record: int | None = None,
    ) -> None:
        location = ""
        if line is not None:
            location = f":{line}"
        elif record is not None:
            location = f":record {record}"
        prefix = f"{path}{location}:" if path is not None else (
            f"record {record}:" if record is not None else ""
        )
        super().__init__(f"{prefix} {message}" if prefix else message)
        self.message = message
        self.path = path
        self.line = line
        self.record = record


class ProtocolError(ReproError):
    """A coherence protocol was driven into (or detected) an illegal state."""


class InvariantViolation(ProtocolError):
    """A runtime coherence invariant check failed.

    Raised by :class:`repro.core.invariants.InvariantChecker` when the
    global cache/directory state contradicts the protocol's declared
    invariants (e.g. two dirty copies of one block).
    """


class ConfigurationError(ReproError):
    """An experiment, workload, or cost model was configured inconsistently."""


class UnknownSchemeError(ConfigurationError):
    """A protocol or workload name did not resolve in the registry."""


class CheckpointError(ReproError):
    """A checkpoint is missing, corrupt, or incompatible with this run.

    Raised by :mod:`repro.runner.checkpoint` when a snapshot fails its
    magic/version/fingerprint compatibility check, so a resumed run can
    never silently mix state from a different experiment.
    """


class ConformanceError(ReproError):
    """A protocol failed the :mod:`repro.verify` conformance gate.

    Covers every way the unified checker can fail: a stale read caught
    by the value-coherence oracle, an invariant violation, a
    cross-protocol event-frequency differential mismatch, a corpus
    regression, or a mutation-testing survivor.  The CLI maps this
    category to exit code 7.
    """


class TransientError(ReproError):
    """A transient, retryable failure (flaky I/O, injected fault).

    The resilient runner's retry layer treats this category — plus
    :class:`OSError` — as worth retrying with backoff; every other
    failure is permanent and is recorded as a cell failure immediately.
    """


class ServiceError(ReproError):
    """Base class for simulation-service failures (:mod:`repro.service`).

    The CLI maps this category to exit code 6; the HTTP API maps its
    subclasses to status codes (:class:`JobSpecError` → 400,
    :class:`JobNotFoundError` → 404, anything else → 500/503).
    """


class JobSpecError(ServiceError):
    """A submitted job spec failed validation (unknown scheme, bad shape)."""


class JobNotFoundError(ServiceError):
    """A job id did not resolve to a known job on this server."""


class ServiceUnavailableError(ServiceError):
    """The service rejected the request (shutting down, or unreachable)."""
