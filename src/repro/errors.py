"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing the common failure categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class TraceFormatError(ReproError):
    """A trace file or record stream is malformed or uses an unknown format."""


class ProtocolError(ReproError):
    """A coherence protocol was driven into (or detected) an illegal state."""


class InvariantViolation(ProtocolError):
    """A runtime coherence invariant check failed.

    Raised by :class:`repro.core.invariants.InvariantChecker` when the
    global cache/directory state contradicts the protocol's declared
    invariants (e.g. two dirty copies of one block).
    """


class ConfigurationError(ReproError):
    """An experiment, workload, or cost model was configured inconsistently."""


class UnknownSchemeError(ConfigurationError):
    """A protocol or workload name did not resolve in the registry."""
