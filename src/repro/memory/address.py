"""Block address arithmetic.

The paper uses a 4-word (16-byte) block throughout; the
:class:`BlockMapper` makes the block size an explicit parameter so that
block-size ablations are possible, while every default in the library
reproduces the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

WORD_BYTES = 4
"""The paper's word size: 32 bits."""

DEFAULT_BLOCK_BYTES = 16
"""The paper's block size: 4 words of 4 bytes (Section 4)."""


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class BlockMapper:
    """Maps byte addresses to cache-block numbers.

    Attributes:
        block_bytes: block size in bytes; must be a power of two.
    """

    block_bytes: int = DEFAULT_BLOCK_BYTES

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.block_bytes):
            raise ValueError(
                f"block_bytes must be a power of two, got {self.block_bytes}"
            )

    @property
    def offset_bits(self) -> int:
        """Number of address bits consumed by the within-block offset."""
        return self.block_bytes.bit_length() - 1

    @property
    def words_per_block(self) -> int:
        """Number of 32-bit words per block (4 for the paper's config)."""
        return max(1, self.block_bytes // WORD_BYTES)

    def block_of(self, address: int) -> int:
        """Return the block number containing byte *address*."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        return address >> self.offset_bits

    def base_address(self, block: int) -> int:
        """Return the first byte address of block number *block*."""
        if block < 0:
            raise ValueError(f"block must be non-negative, got {block}")
        return block << self.offset_bits

    def same_block(self, address_a: int, address_b: int) -> bool:
        """True if both byte addresses fall within the same block."""
        return self.block_of(address_a) == self.block_of(address_b)
