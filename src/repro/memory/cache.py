"""Per-processor cache models.

The paper's methodology simulates **infinite caches** so that the only
misses remaining after first-reference misses are coherence misses
(Section 4).  :class:`InfiniteCache` implements that model.

:class:`FiniteCache` is an extension beyond the paper: a set-associative
LRU cache that lets users estimate the additional first-order cost of
finite capacity, as the paper suggests ("the performance of a system
with smaller caches can be estimated to first order by adding the costs
due to the finite cache size").  Both expose the same interface so the
simulator is agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Any, Generic, Iterator, TypeVar

StateT = TypeVar("StateT")


class CacheModel(ABC, Generic[StateT]):
    """Interface shared by infinite and finite caches.

    A cache maps block numbers to protocol-defined line states.  A block
    that is absent (or whose state the protocol treats as invalid) is
    not cached.  Protocols never store "invalid" states; they remove
    the block instead, so presence <=> validity.
    """

    @abstractmethod
    def get(self, block: int) -> StateT | None:
        """Return the state of *block*, or None if not present."""

    @abstractmethod
    def put(self, block: int, state: StateT) -> "tuple[int, StateT] | None":
        """Insert or update *block* with *state*.

        Returns ``(victim_block, victim_state)`` if the insertion evicted
        another block (finite caches only), else None.
        """

    @abstractmethod
    def evict(self, block: int) -> StateT | None:
        """Remove *block* from the cache, returning its state if present."""

    @abstractmethod
    def __contains__(self, block: int) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def blocks(self) -> Iterator[int]:
        """Iterate over the block numbers currently cached."""

    def touch(self, block: int) -> None:
        """Record a reference to *block* for replacement bookkeeping.

        Infinite caches ignore this; finite caches refresh LRU order.
        """


class InfiniteCache(CacheModel[StateT]):
    """An unbounded cache: blocks never leave except by invalidation."""

    def __init__(self) -> None:
        self._lines: dict[int, StateT] = {}

    def get(self, block: int) -> StateT | None:
        """Return the block's state, or None if absent."""
        return self._lines.get(block)

    def put(self, block: int, state: StateT) -> None:
        """Insert or update a line; returns any eviction victim."""
        self._lines[block] = state
        return None

    def evict(self, block: int) -> StateT | None:
        """Remove the block, returning its state if present."""
        return self._lines.pop(block, None)

    def __contains__(self, block: int) -> bool:
        return block in self._lines

    def __len__(self) -> int:
        return len(self._lines)

    def blocks(self) -> Iterator[int]:
        """Iterate over resident block numbers."""
        return iter(self._lines)

    def items(self) -> Iterator[tuple[int, StateT]]:
        """Iterate over (block, state) pairs."""
        return iter(self._lines.items())


class FiniteCache(CacheModel[StateT]):
    """A set-associative cache with LRU replacement (extension, see §4).

    Args:
        num_sets: number of cache sets; must be a power of two.
        associativity: lines per set.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or (num_sets & (num_sets - 1)) != 0:
            raise ValueError(f"num_sets must be a positive power of two, got {num_sets}")
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        self._num_sets = num_sets
        self._associativity = associativity
        # Each set is an OrderedDict block -> state, LRU first.
        self._sets: list[OrderedDict[int, StateT]] = [
            OrderedDict() for _ in range(num_sets)
        ]

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self._num_sets

    @property
    def associativity(self) -> int:
        """Lines per set."""
        return self._associativity

    @property
    def capacity_blocks(self) -> int:
        """Total number of blocks the cache can hold."""
        return self._num_sets * self._associativity

    def _set_for(self, block: int) -> OrderedDict[int, StateT]:
        return self._sets[block & (self._num_sets - 1)]

    def get(self, block: int) -> StateT | None:
        """Return the block's state, or None if absent."""
        return self._set_for(block).get(block)

    def touch(self, block: int) -> None:
        """Refresh replacement bookkeeping for the block."""
        cache_set = self._set_for(block)
        if block in cache_set:
            cache_set.move_to_end(block)

    def put(self, block: int, state: StateT) -> tuple[int, StateT] | None:
        """Insert or update a line; returns any eviction victim."""
        cache_set = self._set_for(block)
        victim: tuple[int, StateT] | None = None
        if block not in cache_set and len(cache_set) >= self._associativity:
            victim = cache_set.popitem(last=False)
        cache_set[block] = state
        cache_set.move_to_end(block)
        return victim

    def evict(self, block: int) -> StateT | None:
        """Remove the block, returning its state if present."""
        return self._set_for(block).pop(block, None)

    def __contains__(self, block: int) -> bool:
        return block in self._set_for(block)

    def __len__(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    def blocks(self) -> Iterator[int]:
        """Iterate over resident block numbers."""
        for cache_set in self._sets:
            yield from cache_set

    def items(self) -> Iterator[tuple[int, StateT]]:
        """Iterate over (block, state) pairs."""
        for cache_set in self._sets:
            yield from cache_set.items()


def make_cache(kind: str = "infinite", **kwargs: Any) -> CacheModel:
    """Build a cache model by name (``"infinite"`` or ``"finite"``)."""
    if kind == "infinite":
        return InfiniteCache()
    if kind == "finite":
        return FiniteCache(
            num_sets=kwargs.get("num_sets", 1024),
            associativity=kwargs.get("associativity", 2),
        )
    raise ValueError(f"unknown cache kind: {kind!r}")
