"""Cache line states.

Two state alphabets cover every protocol in the paper:

* :class:`LineState` — the three-state invalidation-protocol alphabet
  (invalid / valid-clean / dirty) used by Dir1NB, Dir0B, DirnNB, the
  limited-pointer schemes, and WTI (which never reaches DIRTY because
  it writes through).
* :class:`DragonLineState` — the four-state Dragon update-protocol
  alphabet.  ``VALID_EXCLUSIVE`` and ``SHARED_CLEAN`` are clean;
  ``DIRTY`` and ``SHARED_DIRTY`` mark the owner responsible for
  supplying the block and (eventually) writing it back.
"""

from __future__ import annotations

import enum


class LineState(enum.Enum):
    """Invalidation-protocol cache line states (cf. Section 1)."""

    INVALID = "invalid"
    CLEAN = "clean"
    DIRTY = "dirty"

    @property
    def is_valid(self) -> bool:
        """True when the line holds usable data."""
        return self is not LineState.INVALID

    @property
    def is_dirty(self) -> bool:
        """True when memory is stale with respect to this line."""
        return self is LineState.DIRTY


class DragonLineState(enum.Enum):
    """Dragon update-protocol cache line states [McCreight 84]."""

    VALID_EXCLUSIVE = "valid-exclusive"
    SHARED_CLEAN = "shared-clean"
    SHARED_DIRTY = "shared-dirty"
    DIRTY = "dirty"

    @property
    def is_owner(self) -> bool:
        """True when this cache must supply the block / write it back."""
        return self in (DragonLineState.DIRTY, DragonLineState.SHARED_DIRTY)

    @property
    def is_shared(self) -> bool:
        """True when other caches may hold copies."""
        return self in (DragonLineState.SHARED_CLEAN, DragonLineState.SHARED_DIRTY)

    @property
    def is_dirty(self) -> bool:
        """True when memory is stale with respect to this line."""
        return self.is_owner
