"""Cache geometry: the finite-capacity sweep axis.

The paper simulates infinite caches (§4) so the only misses left after
first references are coherence misses.  :class:`CacheGeometry` is the
configuration object that turns capacity back on: it describes one
per-processor cache shape (total lines and associativity) plus an
optional directory-entry bound, and *is itself the cache factory* —
calling a geometry builds a fresh :class:`~repro.memory.cache.FiniteCache`
with the matching set count.  Because the dataclass is frozen and
hashable it travels safely through scheme option dicts, result-cache
keys, pickled checkpoint cells, and fabric job specs.

Geometries have one canonical spelling, ``LINESxASSOC[@dir:ENTRIES]``
(e.g. ``"64x4"`` or ``"256x2@dir:128"``), used both on the CLI and as
the suffix :func:`~repro.core.experiment.scheme_key` appends to finite
cells so ``dir0b`` and ``dir0b@64x4`` never collide in a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory.cache import FiniteCache


@dataclass(frozen=True)
class CacheGeometry:
    """One finite cache shape, usable directly as a ``cache_factory``.

    Args:
        lines: total cache lines per processor (``num_sets * assoc``).
        assoc: lines per set (associativity).
        dir_entries: optional directory capacity in entries; ``None``
            leaves the directory unbounded (cache-only finiteness).
    """

    lines: int
    assoc: int = 1
    dir_entries: int | None = None

    def __post_init__(self) -> None:
        if self.lines <= 0:
            raise ConfigurationError(f"geometry needs positive lines, got {self.lines}")
        if self.assoc <= 0:
            raise ConfigurationError(f"geometry needs positive assoc, got {self.assoc}")
        if self.lines % self.assoc != 0:
            raise ConfigurationError(
                f"lines ({self.lines}) must be a multiple of assoc ({self.assoc})"
            )
        sets = self.lines // self.assoc
        if sets & (sets - 1) != 0:
            raise ConfigurationError(
                f"geometry {self.lines}x{self.assoc} implies {sets} sets; "
                "the set count must be a power of two"
            )
        if self.dir_entries is not None and self.dir_entries <= 0:
            raise ConfigurationError(
                f"geometry needs positive dir_entries, got {self.dir_entries}"
            )

    @property
    def num_sets(self) -> int:
        """Number of cache sets implied by lines/assoc."""
        return self.lines // self.assoc

    def canonical(self) -> str:
        """The canonical spec string (``"64x4"`` / ``"64x4@dir:32"``)."""
        base = f"{self.lines}x{self.assoc}"
        if self.dir_entries is not None:
            base += f"@dir:{self.dir_entries}"
        return base

    def __str__(self) -> str:
        return self.canonical()

    def __call__(self) -> FiniteCache:
        """Build one finite cache of this shape (the factory protocol)."""
        return FiniteCache(num_sets=self.num_sets, associativity=self.assoc)


def parse_geometry(value: object) -> CacheGeometry:
    """Coerce any accepted geometry spelling into a :class:`CacheGeometry`.

    Accepts an existing instance, a canonical string
    (``"LINESxASSOC[@dir:ENTRIES]"``; a bare ``"LINES"`` means
    direct-mapped), a ``(lines, assoc[, dir_entries])`` tuple/list, or a
    dict with those keys.
    """
    if isinstance(value, CacheGeometry):
        return value
    if isinstance(value, dict):
        unknown = set(value) - {"lines", "assoc", "dir_entries"}
        if unknown:
            raise ConfigurationError(
                f"unknown geometry keys: {sorted(unknown)}"
            )
        try:
            return CacheGeometry(**value)
        except TypeError as exc:
            raise ConfigurationError(f"bad geometry dict {value!r}: {exc}") from exc
    if isinstance(value, (tuple, list)):
        if not 1 <= len(value) <= 3:
            raise ConfigurationError(
                f"geometry tuple needs 1-3 elements, got {value!r}"
            )
        return CacheGeometry(*value)
    if isinstance(value, str):
        return _parse_geometry_string(value)
    raise ConfigurationError(f"cannot interpret {value!r} as a cache geometry")


def _parse_geometry_string(spec: str) -> CacheGeometry:
    text = spec.strip()
    dir_entries: int | None = None
    if "@" in text:
        text, _, dir_part = text.partition("@")
        if not dir_part.startswith("dir:"):
            raise ConfigurationError(
                f"bad geometry {spec!r}: expected '@dir:N' after the shape"
            )
        dir_entries = _positive_int(dir_part[len("dir:") :], spec)
    if "x" in text:
        lines_part, _, assoc_part = text.partition("x")
        lines = _positive_int(lines_part, spec)
        assoc = _positive_int(assoc_part, spec)
    else:
        lines = _positive_int(text, spec)
        assoc = 1
    return CacheGeometry(lines=lines, assoc=assoc, dir_entries=dir_entries)


def _positive_int(text: str, spec: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise ConfigurationError(
            f"bad geometry {spec!r}: {text!r} is not an integer"
        ) from None
    if value <= 0:
        raise ConfigurationError(f"bad geometry {spec!r}: {value} must be positive")
    return value
