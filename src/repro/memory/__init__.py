"""Memory-system substrate: blocks, caches, and directory organizations."""

from repro.memory.address import BlockMapper, WORD_BYTES, DEFAULT_BLOCK_BYTES
from repro.memory.line import LineState, DragonLineState
from repro.memory.cache import CacheModel, InfiniteCache, FiniteCache
from repro.memory.geometry import CacheGeometry, parse_geometry
from repro.memory.directory import (
    DirectoryEntry,
    DirectoryOrganization,
    FullMapDirectory,
    TwoBitDirectory,
    TwoBitState,
    LimitedPointerDirectory,
    TangDirectory,
    CoarseVectorDirectory,
    directory_bits_per_block,
)
from repro.memory.coding import CoarseVector

__all__ = [
    "BlockMapper",
    "WORD_BYTES",
    "DEFAULT_BLOCK_BYTES",
    "LineState",
    "DragonLineState",
    "CacheModel",
    "InfiniteCache",
    "FiniteCache",
    "CacheGeometry",
    "parse_geometry",
    "DirectoryEntry",
    "DirectoryOrganization",
    "FullMapDirectory",
    "TwoBitDirectory",
    "TwoBitState",
    "LimitedPointerDirectory",
    "TangDirectory",
    "CoarseVectorDirectory",
    "directory_bits_per_block",
    "CoarseVector",
]
