"""Directory organizations (Section 2 and Section 6 of the paper).

A *directory organization* is the main-memory bookkeeping structure a
directory protocol consults to find cached copies of a block.  The
organizations implemented here are exactly those the paper surveys:

* :class:`FullMapDirectory` — Censier & Feautrier: one presence bit per
  cache plus a dirty bit (``DirnNB``).
* :class:`TangDirectory` — Tang's duplicate-tag organization.  It holds
  the same information as the full map, so it shares that
  implementation, but looking up a block requires *searching* the
  duplicate cache directories and its storage cost scales with cache
  (not memory) size.
* :class:`TwoBitDirectory` — Archibald & Baer: two bits per block
  encoding {not cached, clean in exactly one cache, clean in unknown
  number, dirty in exactly one cache}; invalidations rely on broadcast
  (``Dir0B``).
* :class:`LimitedPointerDirectory` — ``DiriB`` / ``DiriNB``: up to *i*
  cache pointers plus a dirty bit, and for the B variant a broadcast
  bit that is set on pointer overflow.
* :class:`CoarseVectorDirectory` — the Section 6 ternary coding:
  ``2*log2(n)`` bits denoting a superset of the sharers.

Every organization answers the same two questions the protocols ask:
*who might hold this block* (:meth:`DirectoryOrganization.plan_invalidation`)
and *is it dirty, and where* (:meth:`DirectoryOrganization.entry`), and
exposes its per-block storage cost for the Section 6 scalability
analysis.
"""

from __future__ import annotations

import enum
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.memory.coding import CoarseVector


@dataclass(frozen=True)
class DirectoryEntry:
    """A read-only view of one block's directory state.

    Attributes:
        dirty: True if some cache holds the block dirty.
        owner: the dirty cache's index when the organization knows it.
        sharers: the exact sharer set when the organization knows it,
            else None (two-bit directories never know; limited-pointer
            directories lose it on overflow).
        cached: True if the directory believes at least one cache holds
            the block.
    """

    dirty: bool
    owner: int | None
    sharers: frozenset[int] | None
    cached: bool


@dataclass(frozen=True)
class InvalidationPlan:
    """How to reach the caches that must observe an invalidation.

    Attributes:
        targets: exact cache indices to send sequential invalidations to
            (may be empty), or None when the directory cannot enumerate
            holders.
        broadcast: True when a bus broadcast is required instead of (or
            because of the absence of) an enumerable target list.
        wasted_targets: targets known to be a superset of true sharers
            (coarse-vector directories); counted by the scalability
            analysis as wasted invalidation traffic.  Always a subset of
            ``targets``; empty for exact organizations.
    """

    targets: tuple[int, ...] | None
    broadcast: bool
    wasted_targets: tuple[int, ...] = ()

    @property
    def message_count(self) -> int:
        """Number of point-to-point invalidation messages (0 if broadcast)."""
        return 0 if self.targets is None else len(self.targets)


class DirectoryOrganization(ABC):
    """Interface every directory organization implements."""

    def __init__(self, num_caches: int) -> None:
        if num_caches < 1:
            raise ValueError(f"num_caches must be >= 1, got {num_caches}")
        self._num_caches = num_caches

    @property
    def num_caches(self) -> int:
        """Number of caches in the machine."""
        return self._num_caches

    @abstractmethod
    def entry(self, block: int) -> DirectoryEntry:
        """Return the directory's current view of *block*."""

    @abstractmethod
    def note_clean_copy(self, block: int, cache: int) -> None:
        """Record that *cache* obtained a clean copy of *block*."""

    @abstractmethod
    def note_dirty_owner(self, block: int, cache: int) -> None:
        """Record that *cache* is now the sole, dirty holder of *block*."""

    @abstractmethod
    def note_writeback(self, block: int, cache: int, keep_clean: bool) -> None:
        """Record that the dirty owner wrote *block* back to memory.

        If *keep_clean* the owner retains a clean copy; otherwise its
        copy is gone.
        """

    @abstractmethod
    def note_invalidated(self, block: int, cache: int) -> None:
        """Record that *cache*'s copy of *block* was invalidated/evicted."""

    @abstractmethod
    def note_all_invalidated(self, block: int, keep: int | None = None) -> None:
        """Record that every copy was invalidated, except *keep* if given."""

    @abstractmethod
    def plan_invalidation(self, block: int, requester: int) -> InvalidationPlan:
        """Plan how to invalidate all copies of *block* other than *requester*'s."""

    @abstractmethod
    def bits_per_block(self) -> int:
        """Directory storage per memory block, in bits (Section 6)."""

    def check_capacity(self, block: int, cache: int) -> bool:
        """True if a clean copy for *cache* fits without losing precision.

        Only limited-pointer no-broadcast directories ever return False;
        the protocol must then evict an existing sharer first.
        """
        return True

    def overflow_victim(self, block: int, cache: int) -> int:
        """Pick the sharer to displace when :meth:`check_capacity` is False."""
        raise ProtocolError(
            f"{type(self).__name__} never overflows; no victim for block {block}"
        )


@dataclass
class _FullMapEntry:
    dirty: bool = False
    holders: set[int] = field(default_factory=set)


class FullMapDirectory(DirectoryOrganization):
    """Censier–Feautrier presence-bit directory (one valid bit per cache)."""

    #: True for organizations whose lookup must search duplicate tags
    #: rather than index by address (Tang).  Affects cost commentary
    #: only; the information content is identical.
    lookup_is_search = False

    def __init__(self, num_caches: int) -> None:
        super().__init__(num_caches)
        self._entries: dict[int, _FullMapEntry] = {}

    def _get(self, block: int) -> _FullMapEntry:
        entry = self._entries.get(block)
        if entry is None:
            entry = _FullMapEntry()
            self._entries[block] = entry
        return entry

    def entry(self, block: int) -> DirectoryEntry:
        """The directory's current view of one block."""
        stored = self._entries.get(block)
        if stored is None or not stored.holders:
            return DirectoryEntry(dirty=False, owner=None, sharers=frozenset(), cached=False)
        owner = next(iter(stored.holders)) if stored.dirty else None
        return DirectoryEntry(
            dirty=stored.dirty,
            owner=owner,
            sharers=frozenset(stored.holders),
            cached=True,
        )

    def note_clean_copy(self, block: int, cache: int) -> None:
        """Record a clean copy; see :class:`DirectoryOrganization`."""
        entry = self._get(block)
        entry.dirty = False
        entry.holders.add(cache)

    def note_dirty_owner(self, block: int, cache: int) -> None:
        """Record the sole dirty owner; see :class:`DirectoryOrganization`."""
        entry = self._get(block)
        entry.dirty = True
        entry.holders = {cache}

    def note_writeback(self, block: int, cache: int, keep_clean: bool) -> None:
        """Record a write-back; see :class:`DirectoryOrganization`."""
        entry = self._get(block)
        if not entry.dirty or cache not in entry.holders:
            raise ProtocolError(
                f"writeback of block {block} from cache {cache} which is not the dirty owner"
            )
        entry.dirty = False
        if not keep_clean:
            entry.holders.discard(cache)

    def note_invalidated(self, block: int, cache: int) -> None:
        """Record one invalidated copy; see :class:`DirectoryOrganization`."""
        entry = self._entries.get(block)
        if entry is not None:
            entry.holders.discard(cache)
            if not entry.holders:
                entry.dirty = False

    def note_all_invalidated(self, block: int, keep: int | None = None) -> None:
        """Record a full invalidation; see :class:`DirectoryOrganization`."""
        entry = self._entries.get(block)
        if entry is None:
            return
        entry.holders = {keep} if keep is not None and keep in entry.holders else set()
        if not entry.holders:
            entry.dirty = False

    def plan_invalidation(self, block: int, requester: int) -> InvalidationPlan:
        """Plan how to reach all other copies; see :class:`DirectoryOrganization`."""
        stored = self._entries.get(block)
        holders = () if stored is None else tuple(
            sorted(cache for cache in stored.holders if cache != requester)
        )
        return InvalidationPlan(targets=holders, broadcast=False)

    def bits_per_block(self) -> int:
        """n presence bits plus one dirty bit."""
        return self._num_caches + 1


class TangDirectory(FullMapDirectory):
    """Tang's duplicate-tag central directory.

    Information-equivalent to the full map (so the bookkeeping is
    inherited), but each lookup conceptually searches n duplicate cache
    directories, and the storage is a copy of every cache's tags and
    dirty bits rather than per-memory-block presence bits.
    """

    lookup_is_search = True

    def __init__(self, num_caches: int, tag_bits: int = 20, lines_per_cache: int = 4096) -> None:
        super().__init__(num_caches)
        if tag_bits <= 0 or lines_per_cache <= 0:
            raise ValueError("tag_bits and lines_per_cache must be positive")
        self.tag_bits = tag_bits
        self.lines_per_cache = lines_per_cache

    def total_storage_bits(self) -> int:
        """Total duplicate-directory storage: n caches × lines × (tag+dirty)."""
        return self._num_caches * self.lines_per_cache * (self.tag_bits + 1)

    def bits_per_block(self) -> int:
        """Not per-memory-block storage; reported as the full-map equivalent.

        Tang's storage is proportional to total cache size, not memory
        size.  For the Section 6 comparison table we report the
        information-equivalent full-map figure; use
        :meth:`total_storage_bits` for the true duplicate-tag cost.
        """
        return self._num_caches + 1


class TwoBitState(enum.Enum):
    """The four states of the Archibald–Baer two-bit directory entry."""

    NOT_CACHED = "not-cached"
    CLEAN_ONE = "clean-one"
    CLEAN_MANY = "clean-many"
    DIRTY_ONE = "dirty-one"


class TwoBitDirectory(DirectoryOrganization):
    """Archibald–Baer directory: 2 bits per block, no pointers (``Dir0B``).

    The directory never knows *which* caches hold a block, so
    invalidations are broadcast — except that the ``CLEAN_ONE`` state
    lets a writer that itself holds the only copy skip the broadcast
    entirely (the paper's "block clean in exactly one cache" refinement).
    """

    def __init__(self, num_caches: int) -> None:
        super().__init__(num_caches)
        self._states: dict[int, TwoBitState] = {}

    def state_of(self, block: int) -> TwoBitState:
        """The raw two-bit state of *block* (exposed for tests/analyses)."""
        return self._states.get(block, TwoBitState.NOT_CACHED)

    def entry(self, block: int) -> DirectoryEntry:
        """The directory's current view of one block."""
        state = self.state_of(block)
        return DirectoryEntry(
            dirty=state is TwoBitState.DIRTY_ONE,
            owner=None,
            sharers=None,
            cached=state is not TwoBitState.NOT_CACHED,
        )

    def note_clean_copy(self, block: int, cache: int) -> None:
        """Record a clean copy; see :class:`DirectoryOrganization`."""
        state = self.state_of(block)
        if state in (TwoBitState.NOT_CACHED,):
            self._states[block] = TwoBitState.CLEAN_ONE
        else:
            # A second (or later) clean copy, or a dirty block that was
            # just written back and re-shared: the count is now unknown.
            self._states[block] = TwoBitState.CLEAN_MANY

    def note_dirty_owner(self, block: int, cache: int) -> None:
        """Record the sole dirty owner; see :class:`DirectoryOrganization`."""
        self._states[block] = TwoBitState.DIRTY_ONE

    def note_writeback(self, block: int, cache: int, keep_clean: bool) -> None:
        """Record a write-back; see :class:`DirectoryOrganization`."""
        if self.state_of(block) is not TwoBitState.DIRTY_ONE:
            raise ProtocolError(
                f"writeback of block {block} but directory state is {self.state_of(block)}"
            )
        self._states[block] = (
            TwoBitState.CLEAN_ONE if keep_clean else TwoBitState.NOT_CACHED
        )

    def note_invalidated(self, block: int, cache: int) -> None:
        # Without pointers the directory cannot decrement a sharer
        # count; only a full invalidation resets it.  Individual
        # invalidation of the lone CLEAN_ONE/DIRTY_ONE holder empties it.
        """Record one invalidated copy; see :class:`DirectoryOrganization`."""
        state = self.state_of(block)
        if state in (TwoBitState.CLEAN_ONE, TwoBitState.DIRTY_ONE):
            self._states[block] = TwoBitState.NOT_CACHED

    def note_all_invalidated(self, block: int, keep: int | None = None) -> None:
        """Record a full invalidation; see :class:`DirectoryOrganization`."""
        self._states[block] = (
            TwoBitState.NOT_CACHED if keep is None else TwoBitState.CLEAN_ONE
        )

    def plan_invalidation(self, block: int, requester: int) -> InvalidationPlan:
        """Plan how to reach all other copies; see :class:`DirectoryOrganization`."""
        state = self.state_of(block)
        if state is TwoBitState.NOT_CACHED:
            return InvalidationPlan(targets=(), broadcast=False)
        if state is TwoBitState.CLEAN_ONE:
            # The requester asking to write a block it holds clean must
            # itself be the single holder: nothing to invalidate.  A
            # requester that does NOT hold the block still needs the
            # lone copy removed, which takes a broadcast (no pointer).
            return InvalidationPlan(targets=None, broadcast=True)
        if state is TwoBitState.DIRTY_ONE:
            return InvalidationPlan(targets=None, broadcast=True)
        return InvalidationPlan(targets=None, broadcast=True)

    def plan_write_hit(self, block: int, writer: int) -> InvalidationPlan:
        """Plan for a write *hit* on a clean block by *writer*.

        In ``CLEAN_ONE`` the writer is necessarily the single holder, so
        no invalidation traffic is needed; otherwise broadcast.
        """
        if self.state_of(block) is TwoBitState.CLEAN_ONE:
            return InvalidationPlan(targets=(), broadcast=False)
        return InvalidationPlan(targets=None, broadcast=True)

    def bits_per_block(self) -> int:
        """Directory storage per memory block, in bits (Section 6)."""
        return 2


class PointerEvictionPolicy(enum.Enum):
    """Victim choice when a ``DiriNB`` directory's pointer array is full."""

    FIFO = "fifo"
    LIFO = "lifo"
    LOWEST_INDEX = "lowest-index"


@dataclass
class _PointerEntry:
    dirty: bool = False
    pointers: list[int] = field(default_factory=list)  # insertion order
    broadcast: bool = False


class LimitedPointerDirectory(DirectoryOrganization):
    """``DiriB`` / ``DiriNB`` limited-pointer directory (Section 6).

    Keeps up to *i* cache pointers per block plus a dirty bit.  With
    ``broadcast_bit=True`` (the B variant) pointer overflow sets a
    broadcast bit and stops tracking; with ``broadcast_bit=False`` (the
    NB variant) the directory never overflows — the protocol must first
    displace an existing sharer chosen by :meth:`overflow_victim`.
    """

    def __init__(
        self,
        num_caches: int,
        num_pointers: int,
        broadcast_bit: bool,
        eviction_policy: PointerEvictionPolicy = PointerEvictionPolicy.FIFO,
    ) -> None:
        super().__init__(num_caches)
        if num_pointers < 1:
            raise ValueError(f"num_pointers must be >= 1, got {num_pointers}")
        self.num_pointers = num_pointers
        self.broadcast_bit = broadcast_bit
        self.eviction_policy = eviction_policy
        self._entries: dict[int, _PointerEntry] = {}

    def _get(self, block: int) -> _PointerEntry:
        entry = self._entries.get(block)
        if entry is None:
            entry = _PointerEntry()
            self._entries[block] = entry
        return entry

    def entry(self, block: int) -> DirectoryEntry:
        """The directory's current view of one block."""
        stored = self._entries.get(block)
        if stored is None or (not stored.pointers and not stored.broadcast):
            return DirectoryEntry(dirty=False, owner=None, sharers=frozenset(), cached=False)
        sharers = None if stored.broadcast else frozenset(stored.pointers)
        owner = stored.pointers[0] if stored.dirty and stored.pointers else None
        return DirectoryEntry(dirty=stored.dirty, owner=owner, sharers=sharers, cached=True)

    def check_capacity(self, block: int, cache: int) -> bool:
        """Whether a new sharer fits; see :class:`DirectoryOrganization`."""
        if self.broadcast_bit:
            return True
        stored = self._entries.get(block)
        if stored is None or stored.broadcast:
            return True
        if cache in stored.pointers:
            return True
        return len(stored.pointers) < self.num_pointers

    def overflow_victim(self, block: int, cache: int) -> int:
        """Sharer to displace on pointer overflow."""
        stored = self._entries.get(block)
        if stored is None or not stored.pointers:
            raise ProtocolError(f"no pointer victim available for block {block}")
        if self.eviction_policy is PointerEvictionPolicy.FIFO:
            return stored.pointers[0]
        if self.eviction_policy is PointerEvictionPolicy.LIFO:
            return stored.pointers[-1]
        return min(stored.pointers)

    def note_clean_copy(self, block: int, cache: int) -> None:
        """Record a clean copy; see :class:`DirectoryOrganization`."""
        stored = self._get(block)
        stored.dirty = False
        if stored.broadcast:
            return
        if cache in stored.pointers:
            return
        if len(stored.pointers) < self.num_pointers:
            stored.pointers.append(cache)
        elif self.broadcast_bit:
            stored.broadcast = True
            stored.pointers = []
        else:
            raise ProtocolError(
                f"pointer overflow on no-broadcast directory for block {block}; "
                f"protocol must evict a sharer first"
            )

    def note_dirty_owner(self, block: int, cache: int) -> None:
        """Record the sole dirty owner; see :class:`DirectoryOrganization`."""
        stored = self._get(block)
        stored.dirty = True
        stored.broadcast = False
        stored.pointers = [cache]

    def note_writeback(self, block: int, cache: int, keep_clean: bool) -> None:
        """Record a write-back; see :class:`DirectoryOrganization`."""
        stored = self._get(block)
        if not stored.dirty or stored.pointers != [cache]:
            raise ProtocolError(
                f"writeback of block {block} from cache {cache} which is not the dirty owner"
            )
        stored.dirty = False
        if not keep_clean:
            stored.pointers = []

    def note_invalidated(self, block: int, cache: int) -> None:
        """Record one invalidated copy; see :class:`DirectoryOrganization`."""
        stored = self._entries.get(block)
        if stored is None or stored.broadcast:
            return
        if cache in stored.pointers:
            stored.pointers.remove(cache)
            if not stored.pointers:
                stored.dirty = False

    def note_all_invalidated(self, block: int, keep: int | None = None) -> None:
        """Record a full invalidation; see :class:`DirectoryOrganization`."""
        stored = self._entries.get(block)
        if stored is None:
            return
        stored.broadcast = False
        stored.pointers = [keep] if keep is not None else []
        if not stored.pointers:
            stored.dirty = False

    def plan_invalidation(self, block: int, requester: int) -> InvalidationPlan:
        """Plan how to reach all other copies; see :class:`DirectoryOrganization`."""
        stored = self._entries.get(block)
        if stored is None:
            return InvalidationPlan(targets=(), broadcast=False)
        if stored.broadcast:
            return InvalidationPlan(targets=None, broadcast=True)
        targets = tuple(sorted(c for c in stored.pointers if c != requester))
        return InvalidationPlan(targets=targets, broadcast=False)

    def bits_per_block(self) -> int:
        """i pointers of ceil(log2 n) bits + dirty bit (+ broadcast bit)."""
        pointer_bits = max(1, math.ceil(math.log2(max(2, self._num_caches))))
        return self.num_pointers * pointer_bits + 1 + (1 if self.broadcast_bit else 0)


class CoarseVectorDirectory(DirectoryOrganization):
    """Section 6 coarse-vector directory: 2·log2(n)-bit ternary code.

    The stored code always denotes a superset of the true sharers, so
    sequential invalidations go to every denoted cache; the ones that
    hold no copy are *wasted* messages, which the plan reports so the
    scalability analysis can account for them.
    """

    def __init__(self, num_caches: int) -> None:
        super().__init__(num_caches)
        # Fail fast: the ternary code only exists for power-of-two sizes.
        CoarseVector.empty(max(2, num_caches))
        self._codes: dict[int, CoarseVector] = {}
        self._dirty: dict[int, bool] = {}
        # Ground truth kept only to classify wasted invalidations; a
        # real implementation would not have it, and the protocol never
        # uses it for correctness decisions.
        self._true_sharers: dict[int, set[int]] = {}

    def code_of(self, block: int) -> CoarseVector:
        """The stored ternary code for *block* (exposed for tests)."""
        return self._codes.get(block, CoarseVector.empty(self._num_caches))

    def entry(self, block: int) -> DirectoryEntry:
        """The directory's current view of one block."""
        code = self.code_of(block)
        if code.is_empty:
            return DirectoryEntry(dirty=False, owner=None, sharers=frozenset(), cached=False)
        dirty = self._dirty.get(block, False)
        sharers = frozenset(code.decode()) if code.is_exact_single else None
        owner = next(iter(sharers)) if dirty and sharers else None
        return DirectoryEntry(dirty=dirty, owner=owner, sharers=sharers, cached=True)

    def note_clean_copy(self, block: int, cache: int) -> None:
        """Record a clean copy; see :class:`DirectoryOrganization`."""
        self._codes[block] = self.code_of(block).add(cache)
        self._dirty[block] = False
        self._true_sharers.setdefault(block, set()).add(cache)

    def note_dirty_owner(self, block: int, cache: int) -> None:
        """Record the sole dirty owner; see :class:`DirectoryOrganization`."""
        self._codes[block] = CoarseVector.single(self._num_caches, cache)
        self._dirty[block] = True
        self._true_sharers[block] = {cache}

    def note_writeback(self, block: int, cache: int, keep_clean: bool) -> None:
        """Record a write-back; see :class:`DirectoryOrganization`."""
        if not self._dirty.get(block, False):
            raise ProtocolError(f"writeback of block {block} which is not dirty")
        self._dirty[block] = False
        if not keep_clean:
            self._codes[block] = CoarseVector.empty(self._num_caches)
            self._true_sharers[block] = set()

    def note_invalidated(self, block: int, cache: int) -> None:
        # The ternary code cannot remove one member; precision is only
        # restored by a full invalidation.  Track ground truth anyway.
        """Record one invalidated copy; see :class:`DirectoryOrganization`."""
        self._true_sharers.setdefault(block, set()).discard(cache)
        code = self.code_of(block)
        if code.is_exact_single and code.contains(cache):
            self._codes[block] = CoarseVector.empty(self._num_caches)
            self._dirty[block] = False

    def note_all_invalidated(self, block: int, keep: int | None = None) -> None:
        """Record a full invalidation; see :class:`DirectoryOrganization`."""
        if keep is None:
            self._codes[block] = CoarseVector.empty(self._num_caches)
            self._true_sharers[block] = set()
            self._dirty[block] = False
        else:
            self._codes[block] = CoarseVector.single(self._num_caches, keep)
            self._true_sharers[block] = {keep}

    def plan_invalidation(self, block: int, requester: int) -> InvalidationPlan:
        """Plan how to reach all other copies; see :class:`DirectoryOrganization`."""
        code = self.code_of(block)
        targets = tuple(sorted(c for c in code.decode() if c != requester))
        true_sharers = self._true_sharers.get(block, set())
        wasted = tuple(c for c in targets if c not in true_sharers)
        return InvalidationPlan(targets=targets, broadcast=False, wasted_targets=wasted)

    def bits_per_block(self) -> int:
        """2 bits per ternary digit × log2(n) digits + dirty bit."""
        return CoarseVector.empty(max(2, _pow2_ceil(self._num_caches))).storage_bits + 1


def _pow2_ceil(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


def directory_bits_per_block(
    organization: str, num_caches: int, num_pointers: int = 1
) -> int:
    """Storage cost in bits/block for a named organization (Section 6 table).

    Supported names: ``full-map``, ``two-bit``, ``limited-b``,
    ``limited-nb``, ``coarse-vector``.
    """
    if organization == "full-map":
        return FullMapDirectory(num_caches).bits_per_block()
    if organization == "two-bit":
        return TwoBitDirectory(num_caches).bits_per_block()
    if organization == "limited-b":
        return LimitedPointerDirectory(num_caches, num_pointers, broadcast_bit=True).bits_per_block()
    if organization == "limited-nb":
        return LimitedPointerDirectory(num_caches, num_pointers, broadcast_bit=False).bits_per_block()
    if organization == "coarse-vector":
        return CoarseVectorDirectory(num_caches).bits_per_block()
    raise ValueError(f"unknown directory organization: {organization!r}")
