"""Ternary coarse-vector sharer coding (paper Section 6).

The paper sketches a compressed directory encoding: store a word of
``d = log2(n)`` digits, each digit taking one of three values — 0, 1, or
*both*.  A word with no *both* digits names exactly one cache; each
*both* digit doubles the set of caches denoted.  The encoded set is
always a **superset** of the true sharer set, so invalidations sent to
every member of the decoded set are conservative (correct, possibly
wasteful).  Each digit costs 2 bits, for ``2*log2(n)`` bits per block.

:class:`CoarseVector` implements the code: exact for a single sharer,
and the minimal ternary superset (bitwise agree/disagree per digit) for
multiple sharers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

BOTH = 2
"""Digit value meaning "this index bit may be 0 or 1"."""


def _check_cache_count(num_caches: int) -> int:
    if num_caches < 2 or (num_caches & (num_caches - 1)) != 0:
        raise ValueError(
            f"coarse vectors require a power-of-two cache count >= 2, got {num_caches}"
        )
    return num_caches.bit_length() - 1


@dataclass(frozen=True)
class CoarseVector:
    """An encoded (superset) sharer set for an *num_caches*-cache system.

    Attributes:
        num_caches: system size n (power of two).
        digits: tuple of ``log2(n)`` digit values in {0, 1, BOTH},
            most-significant digit first; None encodes the empty set.
    """

    num_caches: int
    digits: tuple[int, ...] | None

    def __post_init__(self) -> None:
        width = _check_cache_count(self.num_caches)
        if self.digits is not None:
            if len(self.digits) != width:
                raise ValueError(
                    f"expected {width} digits for {self.num_caches} caches, "
                    f"got {len(self.digits)}"
                )
            for digit in self.digits:
                if digit not in (0, 1, BOTH):
                    raise ValueError(f"digit must be 0, 1, or BOTH; got {digit}")

    @classmethod
    def empty(cls, num_caches: int) -> "CoarseVector":
        """The encoding of "no sharers"."""
        _check_cache_count(num_caches)
        return cls(num_caches, None)

    @classmethod
    def single(cls, num_caches: int, cache: int) -> "CoarseVector":
        """Exact encoding of one sharer."""
        width = _check_cache_count(num_caches)
        if not 0 <= cache < num_caches:
            raise ValueError(f"cache index {cache} out of range [0, {num_caches})")
        digits = tuple((cache >> (width - 1 - position)) & 1 for position in range(width))
        return cls(num_caches, digits)

    @classmethod
    def encode(cls, num_caches: int, sharers: Iterable[int]) -> "CoarseVector":
        """Minimal ternary superset encoding of an arbitrary sharer set."""
        vector = cls.empty(num_caches)
        for cache in sharers:
            vector = vector.add(cache)
        return vector

    def add(self, cache: int) -> "CoarseVector":
        """Return the encoding after adding *cache* to the sharer set.

        Digits where the new index agrees with the current code are kept;
        disagreeing digits widen to BOTH.  This is the natural hardware
        update: a per-digit comparator.
        """
        single = CoarseVector.single(self.num_caches, cache)
        if self.digits is None:
            return single
        merged = tuple(
            ours if ours == theirs else BOTH
            for ours, theirs in zip(self.digits, single.digits)
        )
        return CoarseVector(self.num_caches, merged)

    @property
    def is_empty(self) -> bool:
        """True when the code denotes no caches."""
        return self.digits is None

    @property
    def is_exact_single(self) -> bool:
        """True when the code names exactly one cache."""
        return self.digits is not None and BOTH not in self.digits

    @property
    def denoted_count(self) -> int:
        """Number of caches the code denotes (2**#BOTH digits)."""
        if self.digits is None:
            return 0
        return 1 << sum(1 for digit in self.digits if digit == BOTH)

    def contains(self, cache: int) -> bool:
        """True if *cache* is in the decoded set (always true for sharers)."""
        if self.digits is None:
            return False
        single = CoarseVector.single(self.num_caches, cache)
        assert single.digits is not None
        return all(
            ours in (theirs, BOTH)
            for ours, theirs in zip(self.digits, single.digits)
        )

    def decode(self) -> Iterator[int]:
        """Yield every cache index the code denotes, in increasing order."""
        if self.digits is None:
            return
        width = len(self.digits)
        both_positions = [
            position for position, digit in enumerate(self.digits) if digit == BOTH
        ]
        base = 0
        for position, digit in enumerate(self.digits):
            if digit == 1:
                base |= 1 << (width - 1 - position)
        low_to_high = list(reversed(both_positions))
        for combo in range(1 << len(both_positions)):
            value = base
            for bit_index, position in enumerate(low_to_high):
                if (combo >> bit_index) & 1:
                    value |= 1 << (width - 1 - position)
            yield value

    @property
    def storage_bits(self) -> int:
        """Directory storage cost: 2 bits per digit = 2*log2(n) (§6)."""
        return 2 * _check_cache_count(self.num_caches)
