"""Reference filters used by the paper's methodology.

* :func:`exclude_lock_spins` removes the repeated "test" reads of
  test-and-test-and-set spin loops — the Section 5.2 experiment
  ("we ran a set of experiments excluding all the tests on locks").
* :func:`relabel_sharers_by_process` / :func:`relabel_sharers_by_cpu`
  implement the paper's two sharing views (Section 4.4): by default the
  paper considers a block shared only if *processes* share it, not
  processors, to factor out migration-induced sharing.  The simulator
  keys caches on a single integer ``sharer`` id; these helpers rewrite
  records so that id is the pid or the cpu respectively.
* :func:`split_user_system` separates OS activity from user activity.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


def exclude_lock_spins(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Drop spin-lock *test* reads (Section 5.2's lock-exclusion experiment).

    Only the repeated test reads while a lock is held are removed; the
    test-and-set write and the first (successful) test read are ordinary
    synchronization traffic and remain in the trace.
    """
    return (record for record in records if not record.spin)


def exclude_all_lock_refs(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Drop every lock-related reference (a stronger variant of §5.2)."""
    return (record for record in records if not record.lock)


def relabel_sharers_by_process(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Attribute each reference to a cache keyed by process id.

    After this relabeling the ``cpu`` field equals the ``pid`` field, so
    a simulator keying caches on ``cpu`` measures *process* sharing —
    the paper's default view, which excludes migration-induced sharing.
    """
    return (record.with_cpu(record.pid) for record in records)


def relabel_sharers_by_cpu(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Identity relabeling: caches keyed by physical processor.

    Provided for symmetry with :func:`relabel_sharers_by_process`; the
    paper reports that the two views give similar numbers because its
    traces contain little process migration.
    """
    return iter(records)


def split_user_system(trace: Trace) -> tuple[Trace, Trace]:
    """Split a trace into its user-mode and system-mode components."""
    user = trace.filtered(lambda record: not record.system, name=f"{trace.name}-user")
    system = trace.filtered(lambda record: record.system, name=f"{trace.name}-sys")
    return user, system
