"""Trace records: the unit of input for every simulation.

A trace is an ordered sequence of :class:`TraceRecord` objects, each
describing one memory reference made by one CPU on behalf of one
process.  The format mirrors what the paper's multiprocessor ATUM
traces provide (Section 4.4): interleaved per-CPU address streams
annotated with CPU number and process identifier, preserving the global
temporal order of references.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class RefType(enum.Enum):
    """The kind of memory reference a trace record describes."""

    INSTR = "instr"
    READ = "read"
    WRITE = "write"

    @property
    def is_data(self) -> bool:
        """True for data reads and writes, False for instruction fetches."""
        return self is not RefType.INSTR

    @property
    def short(self) -> str:
        """One-letter code used by the text trace format (``i``/``r``/``w``)."""
        return _SHORT_CODES[self]


_SHORT_CODES = {RefType.INSTR: "i", RefType.READ: "r", RefType.WRITE: "w"}
_FROM_SHORT = {code: ref for ref, code in _SHORT_CODES.items()}


def ref_type_from_code(code: str) -> RefType:
    """Parse a one-letter reference-type code (``i``, ``r``, or ``w``)."""
    try:
        return _FROM_SHORT[code]
    except KeyError:
        raise ValueError(f"unknown reference type code: {code!r}") from None


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One memory reference in a multiprocessor address trace.

    Attributes:
        cpu: physical processor that issued the reference (0-based).
        pid: identifier of the process running on that CPU.
        ref_type: instruction fetch, data read, or data write.
        address: byte address referenced.
        system: True if the reference was made in system (OS) mode.
        lock: True if the reference is part of a lock access — the
            initial "test" reads of a test-and-test-and-set primitive
            and the test-and-set write itself.  Used by the Section 5.2
            spin-lock filter; ordinary references leave it False.
        spin: True only for the repeated *test* reads while spinning on
            a held lock (a subset of ``lock`` references).  The paper's
            Section 5.2 experiment removes exactly these.
    """

    cpu: int
    pid: int
    ref_type: RefType
    address: int
    system: bool = False
    lock: bool = field(default=False)
    spin: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.cpu < 0:
            raise ValueError(f"cpu must be non-negative, got {self.cpu}")
        if self.pid < 0:
            raise ValueError(f"pid must be non-negative, got {self.pid}")
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.spin and not self.lock:
            raise ValueError("spin references must also be lock references")

    @property
    def is_data(self) -> bool:
        """True for data reads/writes; instruction fetches are excluded."""
        return self.ref_type.is_data

    @property
    def is_read(self) -> bool:
        """True for read events/references."""
        return self.ref_type is RefType.READ

    @property
    def is_write(self) -> bool:
        """True for write events/references."""
        return self.ref_type is RefType.WRITE

    def with_cpu(self, cpu: int) -> "TraceRecord":
        """Return a copy of this record attributed to a different CPU."""
        return replace(self, cpu=cpu)

    def with_pid(self, pid: int) -> "TraceRecord":
        """Return a copy of this record attributed to a different process."""
        return replace(self, pid=pid)


def is_data(record: TraceRecord) -> bool:
    """Predicate form of :attr:`TraceRecord.is_data` (handy for ``filter``)."""
    return record.is_data


def data_refs(records) -> "list[TraceRecord] | object":
    """Yield only the data (read/write) references of a record stream."""
    return (record for record in records if record.is_data)
