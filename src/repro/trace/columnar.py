"""Columnar trace storage: the simulator's fast-path input format.

A :class:`ColumnarTrace` stores the same information as a
:class:`~repro.trace.stream.Trace`, but as packed parallel columns
(``array('Q')`` for cpu/pid/address, ``bytes`` for the reference-type
codes and flag bitmasks) instead of one ``TraceRecord`` object per
reference.  That layout cuts memory per record from a ~200-byte
dataclass to 26 bytes and, more importantly, lets
:meth:`repro.core.simulator.Simulator.run` iterate raw ints at C speed
instead of doing attribute and enum dispatch per record — see
``docs/PERFORMANCE.md`` for the design and the bit-identity guarantee.

Conversion is lossless in both directions: ``ColumnarTrace.from_trace``
/ ``from_records`` pack any record stream, and :meth:`to_records` /
:meth:`to_trace` round-trip back to the record representation.  Binary
trace files load directly into columns via
:func:`repro.trace.io.read_trace_binary_columns` without materializing
records at all.
"""

from __future__ import annotations

from array import array
from itertools import compress
from pathlib import Path
from typing import Iterable, Iterator

from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace

#: Integer reference-type codes used by the type column (and the binary
#: file format): instruction fetch, data read, data write.
TYPE_INSTR, TYPE_READ, TYPE_WRITE = 0, 1, 2

_TYPE_TO_CODE = {RefType.INSTR: TYPE_INSTR, RefType.READ: TYPE_READ, RefType.WRITE: TYPE_WRITE}
_CODE_TO_TYPE = (RefType.INSTR, RefType.READ, RefType.WRITE)

_FLAG_SYSTEM = 0x1
_FLAG_LOCK = 0x2
_FLAG_SPIN = 0x4


class ColumnarTrace:
    """A multiprocessor address trace stored column-wise.

    Attributes:
        name: short identifier (matches :class:`Trace`).
        description: free-form provenance note.
        cpu: per-record issuing CPU numbers (``array('Q')``).
        pid: per-record process identifiers (``array('Q')``).
        type_code: per-record reference-type codes (``bytes`` of
            :data:`TYPE_INSTR`/:data:`TYPE_READ`/:data:`TYPE_WRITE`).
        address: per-record byte addresses (``array('Q')``).
        flags: per-record system/lock/spin bitmasks (``bytes``).
    """

    __slots__ = (
        "name", "description", "cpu", "pid", "type_code", "address", "flags",
        "_data_views",
    )

    def __init__(
        self,
        name: str,
        cpu: Iterable[int],
        pid: Iterable[int],
        type_code: Iterable[int],
        address: Iterable[int],
        flags: Iterable[int] | None = None,
        description: str = "",
    ) -> None:
        self.name = name
        self.description = description
        # memoryview columns are accepted as-is: the shared-memory
        # arena (repro.engine.shm) reconstructs traces as zero-copy
        # views over one mapped segment, so coercing here would defeat
        # the pickle-free dispatch path.
        self.cpu = cpu if isinstance(cpu, (array, memoryview)) else array("Q", cpu)
        self.pid = pid if isinstance(pid, (array, memoryview)) else array("Q", pid)
        self.type_code = (
            type_code if isinstance(type_code, memoryview) else bytes(type_code)
        )
        self.address = (
            address if isinstance(address, (array, memoryview)) else array("Q", address)
        )
        if flags is None:
            self.flags = bytes(len(self.type_code))
        elif isinstance(flags, memoryview):
            self.flags = flags
        else:
            self.flags = bytes(flags)
        lengths = {
            len(self.cpu), len(self.pid), len(self.type_code),
            len(self.address), len(self.flags),
        }
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")
        if self.type_code and max(self.type_code) > TYPE_WRITE:
            bad = next(
                i for i, code in enumerate(self.type_code) if code > TYPE_WRITE
            )
            raise ValueError(
                f"invalid reference-type code {self.type_code[bad]} at record {bad}"
            )
        self._data_views: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[TraceRecord],
        name: str = "stream",
        description: str = "",
    ) -> "ColumnarTrace":
        """Pack a record stream into columns (one pass, lossless)."""
        cpus = array("Q")
        pids = array("Q")
        types = bytearray()
        addresses = array("Q")
        flags = bytearray()
        type_to_code = _TYPE_TO_CODE
        for record in records:
            cpus.append(record.cpu)
            pids.append(record.pid)
            types.append(type_to_code[record.ref_type])
            addresses.append(record.address)
            flags.append(
                (_FLAG_SYSTEM if record.system else 0)
                | (_FLAG_LOCK if record.lock else 0)
                | (_FLAG_SPIN if record.spin else 0)
            )
        return cls(name, cpus, pids, types, addresses, flags, description)

    @classmethod
    def from_trace(cls, trace: "Trace | ColumnarTrace") -> "ColumnarTrace":
        """Convert any trace to columnar form (identity if already columnar)."""
        if isinstance(trace, ColumnarTrace):
            return trace
        return cls.from_records(
            trace.records,
            name=trace.name,
            description=getattr(trace, "description", ""),
        )

    @classmethod
    def from_binary_file(
        cls, path: str | Path, name: str | None = None
    ) -> "ColumnarTrace":
        """Load a binary-format trace file directly into columns.

        Uses the bulk ``struct.iter_unpack``-based decoder, so no
        per-record ``TraceRecord`` objects are created.
        """
        from repro.trace.io import read_trace_binary_columns

        file_path = Path(path)
        cpus, pids, types, addresses, flags = read_trace_binary_columns(file_path)
        return cls(
            name or file_path.stem, cpus, pids, types, addresses, flags,
            description=f"columnar load of {file_path}",
        )

    @classmethod
    def from_file(cls, path: str | Path, name: str | None = None) -> "ColumnarTrace":
        """Load any trace file (text or binary, auto-detected) as columns."""
        from repro.trace.io import is_binary_trace, read_trace_file

        file_path = Path(path)
        if is_binary_trace(file_path):
            return cls.from_binary_file(file_path, name)
        return cls.from_records(
            read_trace_file(file_path), name=name or file_path.stem,
            description=f"columnar load of {file_path}",
        )

    # ------------------------------------------------------------------
    # Round-trip back to records
    # ------------------------------------------------------------------

    def to_records(self) -> list[TraceRecord]:
        """Materialize the trace as a list of records (exact round-trip)."""
        return list(self)

    def to_trace(self) -> Trace:
        """Materialize as a record-backed :class:`Trace`."""
        return Trace(self.name, self.to_records(), self.description)

    # ------------------------------------------------------------------
    # Sequence behaviour (mirrors Trace)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.type_code)

    def __iter__(self) -> Iterator[TraceRecord]:
        code_to_type = _CODE_TO_TYPE
        for cpu, pid, code, address, flags in zip(
            self.cpu, self.pid, self.type_code, self.address, self.flags
        ):
            yield TraceRecord(
                cpu=cpu,
                pid=pid,
                ref_type=code_to_type[code],
                address=address,
                system=bool(flags & _FLAG_SYSTEM),
                lock=bool(flags & _FLAG_LOCK),
                spin=bool(flags & _FLAG_SPIN),
            )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ColumnarTrace(
                self.name,
                self.cpu[index],
                self.pid[index],
                self.type_code[index],
                self.address[index],
                self.flags[index],
                self.description,
            )
        code = self.type_code[index]  # IndexError propagates for bad indices
        flags = self.flags[index]
        return TraceRecord(
            cpu=self.cpu[index],
            pid=self.pid[index],
            ref_type=_CODE_TO_TYPE[code],
            address=self.address[index],
            system=bool(flags & _FLAG_SYSTEM),
            lock=bool(flags & _FLAG_LOCK),
            spin=bool(flags & _FLAG_SPIN),
        )

    @property
    def records(self) -> "ColumnarTrace":
        """Sequence view of the records — the trace itself.

        Lets code written against ``trace.records`` (length, slicing,
        iteration) work unchanged; slices stay columnar.
        """
        return self

    @property
    def cpus(self) -> list[int]:
        """Sorted list of CPU numbers appearing in the trace."""
        return sorted(set(self.cpu))

    @property
    def pids(self) -> list[int]:
        """Sorted list of process identifiers appearing in the trace."""
        return sorted(set(self.pid))

    def __getstate__(self):
        # The memoized data views are derived state; rebuilding them in
        # the unpickling process is cheaper than shipping them.  Any
        # memoryview columns (shared-memory-backed traces) are
        # materialized: a view into another process's segment cannot
        # cross a pickle boundary.
        def materialize(value):
            if not isinstance(value, memoryview):
                return value
            return bytes(value) if value.format == "B" else array("Q", value)

        return {
            slot: materialize(getattr(self, slot))
            for slot in self.__slots__
            if slot != "_data_views"
        }

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._data_views = {}

    def __eq__(self, other) -> bool:
        if not isinstance(other, ColumnarTrace):
            return NotImplemented
        return (
            self.name == other.name
            and self.cpu == other.cpu
            and self.pid == other.pid
            and self.type_code == other.type_code
            and self.address == other.address
            and self.flags == other.flags
        )

    # ------------------------------------------------------------------
    # Simulation support
    # ------------------------------------------------------------------

    def data_view(self, sharer_key: str) -> tuple[int, bytes, array, array]:
        """Data-reference-only columns for the simulator's hot loop.

        Returns ``(instr_count, type_codes, sharers, addresses)`` where
        the columns cover only data references (instruction fetches
        carry no coherence traffic, so the fast path counts them in
        bulk instead of branching per record).  ``sharers`` is the pid
        or cpu column according to *sharer_key*.  Views are computed
        once and cached per sharer key.
        """
        view = self._data_views.get(sharer_key)
        if view is None:
            types = self.type_code
            sharer_col = self.pid if sharer_key == "pid" else self.cpu
            # TYPE_INSTR == 0, so the type column is its own selector.
            data_types = bytes(compress(types, types))
            sharers = array("Q", compress(sharer_col, types))
            addresses = array("Q", compress(self.address, types))
            view = (len(types) - len(data_types), data_types, sharers, addresses)
            self._data_views[sharer_key] = view
        return view


def columnar_trace(trace: "Trace | ColumnarTrace | Iterable[TraceRecord]") -> ColumnarTrace:
    """Coerce any trace or record stream to :class:`ColumnarTrace`."""
    if isinstance(trace, ColumnarTrace):
        return trace
    if isinstance(trace, Trace):
        return ColumnarTrace.from_trace(trace)
    return ColumnarTrace.from_records(trace)
