"""Trace characteristic statistics (paper Table 3).

Table 3 of the paper summarizes each trace as total references,
instruction fetches, data reads, data writes, and the user/system
split.  :func:`compute_statistics` derives the same summary (plus a few
extras used elsewhere in the evaluation: lock/spin counts, per-CPU and
per-process reference counts, and the read/write ratio the paper calls
out in Section 4.4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.trace.record import RefType, TraceRecord


@dataclass(frozen=True)
class TraceStatistics:
    """Summary of a multiprocessor address trace (cf. paper Table 3)."""

    name: str
    total_refs: int
    instr_refs: int
    data_reads: int
    data_writes: int
    user_refs: int
    system_refs: int
    lock_refs: int
    spin_reads: int
    refs_per_cpu: dict[int, int] = field(default_factory=dict)
    refs_per_pid: dict[int, int] = field(default_factory=dict)

    @property
    def data_refs(self) -> int:
        """Total data (read + write) references."""
        return self.data_reads + self.data_writes

    @property
    def read_write_ratio(self) -> float:
        """Data reads per data write (``inf`` if the trace has no writes)."""
        if self.data_writes == 0:
            return float("inf")
        return self.data_reads / self.data_writes

    @property
    def instr_fraction(self) -> float:
        """Instruction fetches as a fraction of all references."""
        return self.instr_refs / self.total_refs if self.total_refs else 0.0

    @property
    def read_fraction(self) -> float:
        """Data reads as a fraction of all references."""
        return self.data_reads / self.total_refs if self.total_refs else 0.0

    @property
    def write_fraction(self) -> float:
        """Data writes as a fraction of all references."""
        return self.data_writes / self.total_refs if self.total_refs else 0.0

    @property
    def system_fraction(self) -> float:
        """System-mode references as a fraction of all references."""
        return self.system_refs / self.total_refs if self.total_refs else 0.0

    @property
    def spin_read_fraction_of_reads(self) -> float:
        """Spin-lock test reads as a fraction of all data reads (§4.4)."""
        return self.spin_reads / self.data_reads if self.data_reads else 0.0

    def as_table_row(self) -> dict[str, float]:
        """Row matching the columns of paper Table 3 (counts in thousands)."""
        return {
            "trace": self.name,
            "refs_k": self.total_refs / 1000.0,
            "instr_k": self.instr_refs / 1000.0,
            "drd_k": self.data_reads / 1000.0,
            "dwrt_k": self.data_writes / 1000.0,
            "user_k": self.user_refs / 1000.0,
            "sys_k": self.system_refs / 1000.0,
        }


def compute_statistics(
    records: Iterable[TraceRecord], name: str = "trace"
) -> TraceStatistics:
    """Compute :class:`TraceStatistics` over a record stream in one pass."""
    total = instr = reads = writes = 0
    user = system = lock = spin = 0
    per_cpu: Counter[int] = Counter()
    per_pid: Counter[int] = Counter()

    for record in records:
        total += 1
        per_cpu[record.cpu] += 1
        per_pid[record.pid] += 1
        if record.ref_type is RefType.INSTR:
            instr += 1
        elif record.ref_type is RefType.READ:
            reads += 1
        else:
            writes += 1
        if record.system:
            system += 1
        else:
            user += 1
        if record.lock:
            lock += 1
        if record.spin:
            spin += 1

    return TraceStatistics(
        name=name,
        total_refs=total,
        instr_refs=instr,
        data_reads=reads,
        data_writes=writes,
        user_refs=user,
        system_refs=system,
        lock_refs=lock,
        spin_reads=spin,
        refs_per_cpu=dict(per_cpu),
        refs_per_pid=dict(per_pid),
    )
