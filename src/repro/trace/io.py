"""Trace serialization: a human-readable text format and a compact binary one.

Text format (one record per line, ``#`` comments allowed)::

    <cpu> <pid> <type> <hex-address> [flags]

where ``<type>`` is ``i``/``r``/``w`` and ``flags`` is any combination
of the letters ``s`` (system mode), ``l`` (lock reference), and ``p``
(spin read).  Example::

    0 12 r 0x00400a10
    1 13 w 0x7ffe0040 s
    2 12 r 0x00500000 lp

The binary format packs each record into a fixed 16-byte little-endian
struct; a small header carries a magic number, version, and record
count, so truncated files are detected.

Paths ending in ``.gz`` are transparently gzip-compressed in both
formats.
"""

from __future__ import annotations

import gzip
import io
import struct
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.errors import TraceFormatError
from repro.trace.record import RefType, TraceRecord, ref_type_from_code

_BINARY_MAGIC = b"RPTR"
_BINARY_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")  # magic, version, reserved, record count
_RECORD = struct.Struct("<HHBBHQ")  # cpu, pid, type, flags, reserved, address

_TYPE_TO_INT = {RefType.INSTR: 0, RefType.READ: 1, RefType.WRITE: 2}
_INT_TO_TYPE = {value: key for key, value in _TYPE_TO_INT.items()}

_FLAG_SYSTEM = 0x1
_FLAG_LOCK = 0x2
_FLAG_SPIN = 0x4


def _format_flags(record: TraceRecord) -> str:
    flags = ""
    if record.system:
        flags += "s"
    if record.lock:
        flags += "l"
    if record.spin:
        flags += "p"
    return flags


def _parse_flags(text: str) -> tuple[bool, bool, bool]:
    system = lock = spin = False
    for char in text:
        if char == "s":
            system = True
        elif char == "l":
            lock = True
        elif char == "p":
            spin = True
        else:
            raise TraceFormatError(f"unknown trace record flag: {char!r}")
    return system, lock, spin


def format_record(record: TraceRecord) -> str:
    """Render one record in the text trace format."""
    line = f"{record.cpu} {record.pid} {record.ref_type.short} 0x{record.address:08x}"
    flags = _format_flags(record)
    if flags:
        line += f" {flags}"
    return line


def parse_record(line: str) -> TraceRecord:
    """Parse one line of the text trace format into a record."""
    fields = line.split()
    if len(fields) not in (4, 5):
        raise TraceFormatError(f"expected 4 or 5 fields, got {len(fields)}: {line!r}")
    try:
        cpu = int(fields[0])
        pid = int(fields[1])
        ref_type = ref_type_from_code(fields[2])
        address = int(fields[3], 16)
    except ValueError as exc:
        raise TraceFormatError(f"malformed trace line {line!r}: {exc}") from exc
    system, lock, spin = _parse_flags(fields[4]) if len(fields) == 5 else (False, False, False)
    try:
        return TraceRecord(
            cpu=cpu, pid=pid, ref_type=ref_type, address=address,
            system=system, lock=lock, spin=spin,
        )
    except ValueError as exc:
        raise TraceFormatError(f"invalid trace record {line!r}: {exc}") from exc


def _is_gzip(path: str | Path) -> bool:
    return str(path).endswith(".gz")


def _open_text(path: str | Path, mode: str):
    if _is_gzip(path):
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def _open_binary(path: str | Path, mode: str):
    if _is_gzip(path):
        return gzip.open(path, mode + "b")
    return open(path, mode + "b")


def write_trace_file(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write records to *path* in the text format.  Returns the record count."""
    count = 0
    with _open_text(path, "w") as handle:
        for record in records:
            handle.write(format_record(record))
            handle.write("\n")
            count += 1
    return count


def read_trace_file(path: str | Path) -> Iterator[TraceRecord]:
    """Lazily read records from a text-format trace file."""
    with _open_text(path, "r") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                yield parse_record(line)
            except TraceFormatError as exc:
                raise TraceFormatError(f"{path}:{line_number}: {exc}") from exc


def _pack_record(record: TraceRecord) -> bytes:
    flags = 0
    if record.system:
        flags |= _FLAG_SYSTEM
    if record.lock:
        flags |= _FLAG_LOCK
    if record.spin:
        flags |= _FLAG_SPIN
    return _RECORD.pack(
        record.cpu, record.pid, _TYPE_TO_INT[record.ref_type], flags, 0, record.address
    )


def _unpack_record(buffer: bytes) -> TraceRecord:
    cpu, pid, type_code, flags, _reserved, address = _RECORD.unpack(buffer)
    try:
        ref_type = _INT_TO_TYPE[type_code]
    except KeyError:
        raise TraceFormatError(f"unknown binary reference type code {type_code}") from None
    return TraceRecord(
        cpu=cpu,
        pid=pid,
        ref_type=ref_type,
        address=address,
        system=bool(flags & _FLAG_SYSTEM),
        lock=bool(flags & _FLAG_LOCK),
        spin=bool(flags & _FLAG_SPIN),
    )


def write_trace_binary(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write records to *path* in the binary format.  Returns the record count."""
    body = io.BytesIO()
    count = 0
    for record in records:
        body.write(_pack_record(record))
        count += 1
    with _open_binary(path, "w") as handle:
        handle.write(_HEADER.pack(_BINARY_MAGIC, _BINARY_VERSION, 0, count))
        handle.write(body.getvalue())
    return count


def _read_exact(handle: IO[bytes], size: int, what: str) -> bytes:
    data = handle.read(size)
    if len(data) != size:
        raise TraceFormatError(f"truncated binary trace while reading {what}")
    return data


def read_trace_binary(path: str | Path) -> Iterator[TraceRecord]:
    """Lazily read records from a binary-format trace file."""
    with _open_binary(path, "r") as handle:
        magic, version, _reserved, count = _HEADER.unpack(
            _read_exact(handle, _HEADER.size, "header")
        )
        if magic != _BINARY_MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}; not a repro binary trace")
        if version != _BINARY_VERSION:
            raise TraceFormatError(f"unsupported binary trace version {version}")
        for index in range(count):
            yield _unpack_record(_read_exact(handle, _RECORD.size, f"record {index}"))
