"""Trace serialization: a human-readable text format and a compact binary one.

Text format (one record per line, ``#`` comments allowed)::

    <cpu> <pid> <type> <hex-address> [flags]

where ``<type>`` is ``i``/``r``/``w`` and ``flags`` is any combination
of the letters ``s`` (system mode), ``l`` (lock reference), and ``p``
(spin read).  Example::

    0 12 r 0x00400a10
    1 13 w 0x7ffe0040 s
    2 12 r 0x00500000 lp

The binary format packs each record into a fixed 16-byte little-endian
struct; a small header carries a magic number, version, and record
count, so truncated files are detected.

Paths ending in ``.gz`` are transparently gzip-compressed in both
formats.
"""

from __future__ import annotations

import gzip
import io
import itertools
import struct
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.chunked import ChunkedTrace

from repro.errors import TraceFormatError
from repro.trace.record import RefType, TraceRecord, ref_type_from_code
from repro.trace.stream import Trace

#: Malformed lines tolerated by default in lenient decode mode.
DEFAULT_ERROR_BUDGET = 100

_BINARY_MAGIC = b"RPTR"
_BINARY_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")  # magic, version, reserved, record count
_RECORD = struct.Struct("<HHBBHQ")  # cpu, pid, type, flags, reserved, address

_TYPE_TO_INT = {RefType.INSTR: 0, RefType.READ: 1, RefType.WRITE: 2}
_INT_TO_TYPE = {value: key for key, value in _TYPE_TO_INT.items()}

_FLAG_SYSTEM = 0x1
_FLAG_LOCK = 0x2
_FLAG_SPIN = 0x4


def _format_flags(record: TraceRecord) -> str:
    flags = ""
    if record.system:
        flags += "s"
    if record.lock:
        flags += "l"
    if record.spin:
        flags += "p"
    return flags


def _parse_flags(text: str) -> tuple[bool, bool, bool]:
    system = lock = spin = False
    for char in text:
        if char == "s":
            system = True
        elif char == "l":
            lock = True
        elif char == "p":
            spin = True
        else:
            raise TraceFormatError(f"unknown trace record flag: {char!r}")
    return system, lock, spin


def format_record(record: TraceRecord) -> str:
    """Render one record in the text trace format."""
    line = f"{record.cpu} {record.pid} {record.ref_type.short} 0x{record.address:08x}"
    flags = _format_flags(record)
    if flags:
        line += f" {flags}"
    return line


def parse_record(line: str) -> TraceRecord:
    """Parse one line of the text trace format into a record."""
    fields = line.split()
    if len(fields) not in (4, 5):
        raise TraceFormatError(f"expected 4 or 5 fields, got {len(fields)}: {line!r}")
    try:
        cpu = int(fields[0])
        pid = int(fields[1])
        ref_type = ref_type_from_code(fields[2])
        address = int(fields[3], 16)
    except ValueError as exc:
        raise TraceFormatError(f"malformed trace line {line!r}: {exc}") from exc
    system, lock, spin = _parse_flags(fields[4]) if len(fields) == 5 else (False, False, False)
    try:
        return TraceRecord(
            cpu=cpu, pid=pid, ref_type=ref_type, address=address,
            system=system, lock=lock, spin=spin,
        )
    except ValueError as exc:
        raise TraceFormatError(f"invalid trace record {line!r}: {exc}") from exc


def _is_gzip(path: str | Path) -> bool:
    return str(path).endswith(".gz")


def _open_text(path: str | Path, mode: str):
    if _is_gzip(path):
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def _open_binary(path: str | Path, mode: str):
    if _is_gzip(path):
        return gzip.open(path, mode + "b")
    return open(path, mode + "b")


def write_trace_file(
    records: Iterable[TraceRecord],
    path: str | Path,
    *,
    header: Iterable[str] = (),
) -> int:
    """Write records to *path* in the text format.  Returns the record count.

    Args:
        header: optional comment lines written before the records (the
            ``# `` prefix is added here); the golden-reproducer corpus
            uses this to embed provenance metadata that readers skip.
    """
    count = 0
    with _open_text(path, "w") as handle:
        for line in header:
            handle.write(f"# {line}\n")
        for record in records:
            handle.write(format_record(record))
            handle.write("\n")
            count += 1
    return count


@dataclass
class DecodeReport:
    """What a lenient text decode skipped.

    Pass an instance to :func:`read_trace_file` to receive the counts;
    the same object doubles as the error log for user-facing reporting.

    Attributes:
        skipped: number of malformed lines skipped.
        records: number of records successfully decoded.
        errors: the first few skip reasons, ``path:line`` prefixed.
    """

    skipped: int = 0
    records: int = 0
    errors: list[str] = field(default_factory=list)

    _MAX_SAMPLES = 20

    def note(self, error: TraceFormatError) -> None:
        """Record one skipped line."""
        self.skipped += 1
        if len(self.errors) < self._MAX_SAMPLES:
            self.errors.append(str(error))

    def summary(self) -> str:
        """One-line human-readable account of the decode."""
        if not self.skipped:
            return f"{self.records:,} records, no malformed lines"
        return (
            f"{self.records:,} records, skipped {self.skipped:,} malformed "
            f"line{'s' if self.skipped != 1 else ''} "
            f"(first: {self.errors[0] if self.errors else 'n/a'})"
        )


def read_trace_file(
    path: str | Path,
    *,
    lenient: bool = False,
    error_budget: int = DEFAULT_ERROR_BUDGET,
    report: DecodeReport | None = None,
) -> Iterator[TraceRecord]:
    """Lazily read records from a text-format trace file.

    Every parse failure is reported as a :class:`TraceFormatError`
    carrying the file path and 1-based line number (also available as
    the exception's ``path``/``line`` attributes).

    Args:
        lenient: skip malformed lines instead of failing on the first.
        error_budget: in lenient mode, the maximum number of malformed
            lines tolerated before the decode fails anyway; a corrupt
            file should not silently degrade into an empty trace.
        report: optional :class:`DecodeReport` that receives the counts
            of decoded records and skipped lines.
    """
    if error_budget < 0:
        raise ValueError(f"error_budget must be non-negative, got {error_budget}")
    report = report if report is not None else DecodeReport()
    with _open_text(path, "r") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = parse_record(line)
            except TraceFormatError as exc:
                located = TraceFormatError(str(exc), path=str(path), line=line_number)
                if not lenient:
                    raise located from exc
                report.note(located)
                if report.skipped > error_budget:
                    raise TraceFormatError(
                        f"error budget exhausted: {report.skipped} malformed "
                        f"lines exceed the budget of {error_budget} "
                        f"(last: {located})",
                        path=str(path),
                    ) from exc
                continue
            report.records += 1
            yield record


def _pack_record(record: TraceRecord) -> bytes:
    flags = 0
    if record.system:
        flags |= _FLAG_SYSTEM
    if record.lock:
        flags |= _FLAG_LOCK
    if record.spin:
        flags |= _FLAG_SPIN
    return _RECORD.pack(
        record.cpu, record.pid, _TYPE_TO_INT[record.ref_type], flags, 0, record.address
    )


def _unpack_record(buffer: bytes) -> TraceRecord:
    cpu, pid, type_code, flags, _reserved, address = _RECORD.unpack(buffer)
    try:
        ref_type = _INT_TO_TYPE[type_code]
    except KeyError:
        raise TraceFormatError(f"unknown binary reference type code {type_code}") from None
    return TraceRecord(
        cpu=cpu,
        pid=pid,
        ref_type=ref_type,
        address=address,
        system=bool(flags & _FLAG_SYSTEM),
        lock=bool(flags & _FLAG_LOCK),
        spin=bool(flags & _FLAG_SPIN),
    )


def write_trace_binary(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write records to *path* in the binary format.  Returns the record count."""
    body = io.BytesIO()
    count = 0
    for record in records:
        body.write(_pack_record(record))
        count += 1
    with _open_binary(path, "w") as handle:
        handle.write(_HEADER.pack(_BINARY_MAGIC, _BINARY_VERSION, 0, count))
        handle.write(body.getvalue())
    return count


def _read_exact(handle: IO[bytes], size: int, what: str) -> bytes:
    data = handle.read(size)
    if len(data) != size:
        raise TraceFormatError(f"truncated binary trace while reading {what}")
    return data


def _read_up_to(handle: IO[bytes], size: int) -> bytes:
    """Read *size* bytes, tolerating short reads; returns what was available."""
    chunks = []
    remaining = size
    while remaining:
        data = handle.read(remaining)
        if not data:
            break
        chunks.append(data)
        remaining -= len(data)
    return b"".join(chunks) if len(chunks) != 1 else chunks[0]


#: Records decoded per bulk ``struct.iter_unpack`` batch (1 MiB of body).
DECODE_CHUNK_RECORDS = 65_536


def _read_binary_header(handle: IO[bytes]) -> int:
    """Validate the binary header on *handle* and return the record count."""
    magic, version, _reserved, count = _HEADER.unpack(
        _read_exact(handle, _HEADER.size, "header")
    )
    if magic != _BINARY_MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}; not a repro binary trace")
    if version != _BINARY_VERSION:
        raise TraceFormatError(f"unsupported binary trace version {version}")
    return count


def _attach_path(exc: TraceFormatError, path: str | Path) -> TraceFormatError:
    """Re-raiseable copy of *exc* with the file path attached."""
    return TraceFormatError(
        exc.message, path=str(path), line=exc.line, record=exc.record
    )


def read_trace_binary(path: str | Path) -> Iterator[TraceRecord]:
    """Lazily read records from a binary-format trace file.

    Records are decoded in bulk with ``struct.iter_unpack`` over
    megabyte-sized chunks rather than one ``read``/``unpack`` pair per
    record.  Truncation, bad magic, version skew, and undecodable
    records are all reported as :class:`TraceFormatError` with the file
    path attached; body errors also carry the 0-based record index (the
    exception's ``record`` attribute), mirroring how text-format errors
    carry line numbers.
    """
    record_size = _RECORD.size
    int_to_type = _INT_TO_TYPE
    with _open_binary(path, "r") as handle:
        try:
            count = _read_binary_header(handle)
            index = 0
            while index < count:
                want = min(count - index, DECODE_CHUNK_RECORDS)
                chunk = _read_up_to(handle, want * record_size)
                complete = len(chunk) // record_size
                if complete < want:
                    raise TraceFormatError(
                        "truncated binary trace (file ends mid-body; header "
                        f"promised {count} records)",
                        record=index + complete,
                    )
                for cpu, pid, type_code, flags, _res, address in _RECORD.iter_unpack(chunk):
                    try:
                        ref_type = int_to_type[type_code]
                    except KeyError:
                        raise TraceFormatError(
                            f"unknown binary reference type code {type_code}",
                            record=index,
                        ) from None
                    yield TraceRecord(
                        cpu=cpu,
                        pid=pid,
                        ref_type=ref_type,
                        address=address,
                        system=bool(flags & _FLAG_SYSTEM),
                        lock=bool(flags & _FLAG_LOCK),
                        spin=bool(flags & _FLAG_SPIN),
                    )
                    index += 1
        except TraceFormatError as exc:
            if exc.path is not None:
                raise
            raise _attach_path(exc, path) from exc


def read_trace_binary_columns(
    path: str | Path,
) -> tuple["array", "array", bytes, "array", bytes]:
    """Decode a binary trace into packed per-field columns in one pass.

    Returns ``(cpus, pids, type_codes, addresses, flags)`` where the
    integer columns are ``array('Q')`` instances and the type/flag
    columns are ``bytes``.  This is the bulk-loading path behind
    :class:`repro.trace.columnar.ColumnarTrace`: each 16-byte record is
    reinterpreted as two little-endian 64-bit words and the fields are
    extracted with integer arithmetic, avoiding a ``TraceRecord``
    allocation per record.  Errors match :func:`read_trace_binary`.
    """
    from array import array

    cpus = array("Q")
    pids = array("Q")
    types = bytearray()
    addresses = array("Q")
    flag_col = bytearray()
    record_size = _RECORD.size
    little_endian = sys.byteorder == "little"
    with _open_binary(path, "r") as handle:
        try:
            count = _read_binary_header(handle)
            index = 0
            while index < count:
                want = min(count - index, DECODE_CHUNK_RECORDS)
                chunk = _read_up_to(handle, want * record_size)
                complete = len(chunk) // record_size
                if complete < want:
                    raise TraceFormatError(
                        "truncated binary trace (file ends mid-body; header "
                        f"promised {count} records)",
                        record=index + complete,
                    )
                if little_endian:
                    # struct layout <HHBBHQ == two native uint64 words on
                    # little-endian hosts: cpu|pid<<16|type<<32|flags<<40,
                    # then the address word.
                    words = array("Q", chunk)
                    heads = words[0::2]
                    addresses.extend(words[1::2])
                    cpus.extend(word & 0xFFFF for word in heads)
                    pids.extend((word >> 16) & 0xFFFF for word in heads)
                    types.extend((word >> 32) & 0xFF for word in heads)
                    flag_col.extend((word >> 40) & 0xFF for word in heads)
                else:  # pragma: no cover - big-endian fallback
                    for cpu, pid, code, flags, _res, address in _RECORD.iter_unpack(chunk):
                        cpus.append(cpu)
                        pids.append(pid)
                        types.append(code)
                        addresses.append(address)
                        flag_col.append(flags)
                index += want
            if types and max(types) > max(_INT_TO_TYPE):
                bad = next(i for i, code in enumerate(types) if code not in _INT_TO_TYPE)
                raise TraceFormatError(
                    f"unknown binary reference type code {types[bad]}", record=bad
                )
        except TraceFormatError as exc:
            if exc.path is not None:
                raise
            raise _attach_path(exc, path) from exc
    return cpus, pids, bytes(types), addresses, bytes(flag_col)


# ----------------------------------------------------------------------
# Format auto-detection and lazy file-backed traces
# ----------------------------------------------------------------------

def is_binary_trace(path: str | Path) -> bool:
    """True when *path* holds a binary-format trace (magic sniffed)."""
    opener = gzip.open if _is_gzip(path) else open
    try:
        with opener(path, "rb") as handle:
            return handle.read(len(_BINARY_MAGIC)) == _BINARY_MAGIC
    except (OSError, gzip.BadGzipFile):
        return False


def read_any_trace_file(
    path: str | Path,
    *,
    lenient: bool = False,
    error_budget: int = DEFAULT_ERROR_BUDGET,
    report: DecodeReport | None = None,
) -> Iterator[TraceRecord]:
    """Lazily read a trace file, auto-detecting text vs binary format."""
    if is_binary_trace(path):
        return read_trace_binary(path)
    return read_trace_file(
        path, lenient=lenient, error_budget=error_budget, report=report
    )


class _LazyRecords:
    """A re-iterable record sequence streamed from a trace file.

    Each iteration re-reads the file, so parse errors surface wherever
    the records are actually consumed — which lets an error-isolated
    sweep contain a corrupt trace inside the failing cell instead of
    dying at load time.  Length and slices are computed by streaming.
    """

    def __init__(self, path: Path, lenient: bool, error_budget: int) -> None:
        self.path = path
        self.lenient = lenient
        self.error_budget = error_budget
        self._count: int | None = None

    def __iter__(self) -> Iterator[TraceRecord]:
        return read_any_trace_file(
            self.path, lenient=self.lenient, error_budget=self.error_budget
        )

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(1 for _ in self)
        return self._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            if index.step not in (None, 1) or (index.start or 0) < 0:
                raise TypeError("lazy traces support only forward slices")
            return list(itertools.islice(iter(self), index.start or 0, index.stop))
        if index < 0:
            raise IndexError("lazy traces do not support negative indexing")
        try:
            return next(itertools.islice(iter(self), index, index + 1))
        except StopIteration:
            raise IndexError(index) from None


class LazyTraceFile(Trace):
    """A :class:`~repro.trace.stream.Trace` backed by an unread file.

    Nothing is parsed until the records are iterated, so a malformed
    file fails inside whatever unit consumes it (e.g. one sweep cell)
    rather than up front.  Re-iteration re-reads the file.
    """

    def __init__(
        self,
        path: str | Path,
        name: str | None = None,
        *,
        lenient: bool = False,
        error_budget: int = DEFAULT_ERROR_BUDGET,
    ) -> None:
        file_path = Path(path)
        self.name = name or file_path.stem
        self.records = _LazyRecords(file_path, lenient, error_budget)
        self.description = f"lazily read from {file_path}"


def load_trace(
    path: str | Path,
    name: str | None = None,
    *,
    lazy: bool = False,
    lenient: bool = False,
    report: DecodeReport | None = None,
) -> "Trace | ChunkedTrace":
    """Load a trace file (text, binary, or chunked store — auto-detected).

    Args:
        lazy: defer reading; parse errors then surface at iteration
            time (see :class:`LazyTraceFile`).
        lenient: skip malformed text lines within the error budget.
        report: eager text decodes record their skip counts here.

    Chunked store files (``.ctrc``, magic-sniffed) return a
    :class:`~repro.store.chunked.ChunkedTrace` — inherently lazy
    (only the index is read here) and duck-compatible with
    :class:`~repro.trace.stream.Trace`, so every path-taking entry
    point (``repro run``, sweep specs, the fabric) accepts them.
    """
    file_path = Path(path)
    from repro.store.format import is_chunked_trace

    if is_chunked_trace(file_path):
        from repro.store.chunked import ChunkedTrace

        return ChunkedTrace(
            file_path, name, lenient=lenient, report=report
        )
    if lazy:
        return LazyTraceFile(file_path, name, lenient=lenient)
    records = list(read_any_trace_file(file_path, lenient=lenient, report=report))
    return Trace(name or file_path.stem, records)
