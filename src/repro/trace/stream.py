"""Trace containers and stream utilities.

A :class:`Trace` is a named, materialized sequence of
:class:`~repro.trace.record.TraceRecord` objects.  Simulations accept
any iterable of records, but the named container is convenient for the
multi-trace experiments the paper runs (POPS, THOR, PERO).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.trace.record import TraceRecord


@dataclass
class Trace:
    """A named multiprocessor address trace.

    Attributes:
        name: short identifier (e.g. ``"pops"``).
        records: the interleaved reference stream, in global time order.
        description: free-form provenance note.
    """

    name: str
    records: Sequence[TraceRecord]
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.records, (list, tuple)):
            self.records = list(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    @property
    def cpus(self) -> list[int]:
        """Sorted list of CPU numbers appearing in the trace."""
        return sorted({record.cpu for record in self.records})

    @property
    def pids(self) -> list[int]:
        """Sorted list of process identifiers appearing in the trace."""
        return sorted({record.pid for record in self.records})

    def filtered(self, predicate, name: str | None = None) -> "Trace":
        """Return a new trace containing only records matching *predicate*."""
        return Trace(
            name=name or self.name,
            records=[record for record in self.records if predicate(record)],
            description=self.description,
        )

    def head(self, n: int) -> "Trace":
        """Return a trace containing the first *n* records."""
        return Trace(self.name, list(self.records[:n]), self.description)


def count_records(records: Iterable[TraceRecord]) -> int:
    """Count records in a stream without materializing it."""
    return sum(1 for _ in records)


def take(records: Iterable[TraceRecord], n: int) -> list[TraceRecord]:
    """Materialize the first *n* records of a stream."""
    return list(itertools.islice(records, n))


def merge_streams(
    streams: Sequence[Iterable[tuple[int, TraceRecord]]],
) -> Iterator[TraceRecord]:
    """Merge timestamped per-CPU streams into one global-time-ordered stream.

    Each element of *streams* yields ``(timestamp, record)`` pairs that
    are individually time-ordered.  Ties are broken by stream index so
    the merge is deterministic.  This mirrors how multiprocessor ATUM
    interleaves the per-CPU address streams.
    """
    def keyed(index: int, stream):
        """Tag one stream's items with (timestamp, stream index)."""
        for timestamp, record in stream:
            yield timestamp, index, record

    merged = heapq.merge(*(keyed(i, stream) for i, stream in enumerate(streams)))
    for _timestamp, _index, record in merged:
        yield record


@dataclass
class RoundRobinInterleaver:
    """Interleave per-CPU record streams a fixed quantum at a time.

    A simple deterministic stand-in for hardware trace interleaving:
    pull *quantum* records from each stream in turn until all streams
    are exhausted.  Used by workload generators that produce one stream
    per processor.
    """

    quantum: int = 1

    def __post_init__(self) -> None:
        if self.quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {self.quantum}")

    def interleave(
        self, streams: Sequence[Iterable[TraceRecord]]
    ) -> Iterator[TraceRecord]:
        """Merge streams quantum records at a time."""
        iterators = [iter(stream) for stream in streams]
        live = list(range(len(iterators)))
        while live:
            finished = []
            for index in live:
                for _ in range(self.quantum):
                    try:
                        yield next(iterators[index])
                    except StopIteration:
                        finished.append(index)
                        break
            for index in finished:
                live.remove(index)
