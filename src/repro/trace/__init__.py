"""Multiprocessor address-trace substrate.

This subpackage provides the trace representation used throughout the
library: an ATUM-like interleaved stream of per-CPU, per-process memory
references (instruction fetches, data reads, data writes), plus
serialization, statistics (paper Table 3), and the reference filters
used by the paper's Section 5.2 spin-lock study.
"""

from repro.trace.record import RefType, TraceRecord, data_refs, is_data
from repro.trace.columnar import ColumnarTrace, columnar_trace
from repro.trace.stream import (
    Trace,
    count_records,
    merge_streams,
    take,
)
from repro.trace.io import (
    DecodeReport,
    LazyTraceFile,
    is_binary_trace,
    load_trace,
    read_any_trace_file,
    read_trace_file,
    write_trace_file,
    read_trace_binary,
    read_trace_binary_columns,
    write_trace_binary,
)
from repro.trace.stats import TraceStatistics, compute_statistics
from repro.trace.windows import WindowCost, sparkline, window_costs, window_statistics, windows
from repro.trace.filters import (
    exclude_lock_spins,
    relabel_sharers_by_process,
    relabel_sharers_by_cpu,
    split_user_system,
)

__all__ = [
    "RefType",
    "TraceRecord",
    "Trace",
    "ColumnarTrace",
    "columnar_trace",
    "read_trace_binary_columns",
    "data_refs",
    "is_data",
    "count_records",
    "merge_streams",
    "take",
    "DecodeReport",
    "LazyTraceFile",
    "is_binary_trace",
    "load_trace",
    "read_any_trace_file",
    "read_trace_file",
    "write_trace_file",
    "read_trace_binary",
    "write_trace_binary",
    "TraceStatistics",
    "compute_statistics",
    "exclude_lock_spins",
    "relabel_sharers_by_process",
    "relabel_sharers_by_cpu",
    "split_user_system",
    "windows",
    "window_statistics",
    "window_costs",
    "WindowCost",
    "sparkline",
]
