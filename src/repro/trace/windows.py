"""Trace windowing: phase behaviour over time.

Real parallel programs run in phases — lock convoys form and dissolve,
producers fill buffers, routers sweep regions — so per-trace averages
can hide a lot.  These utilities split a trace into fixed-size windows
and measure per-window statistics or per-window simulation costs, the
standard way to expose phase structure in trace-driven studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.simulator import Simulator
from repro.cost.bus import BusModel
from repro.errors import ConfigurationError
from repro.trace.stats import TraceStatistics, compute_statistics
from repro.trace.stream import Trace


def windows(trace: Trace, window_size: int) -> Iterator[Trace]:
    """Split a trace into consecutive windows of *window_size* records.

    The last window may be shorter; empty traces yield nothing.
    """
    if window_size < 1:
        raise ConfigurationError("window_size must be >= 1")
    for start in range(0, len(trace), window_size):
        yield Trace(
            name=f"{trace.name}[{start}:{start + window_size}]",
            records=list(trace.records[start : start + window_size]),
            description=trace.description,
        )


def window_statistics(
    trace: Trace, window_size: int
) -> list[TraceStatistics]:
    """Table-3 style statistics for every window."""
    return [
        compute_statistics(window.records, window.name)
        for window in windows(trace, window_size)
    ]


@dataclass(frozen=True)
class WindowCost:
    """One window's coherence cost under a continuing simulation."""

    start: int
    end: int
    bus_cycles_per_reference: float
    data_miss_fraction: float
    spin_fraction: float


def window_costs(
    trace: Trace,
    scheme: str,
    bus: BusModel,
    window_size: int,
    simulator: Simulator | None = None,
) -> list[WindowCost]:
    """Per-window bus cycles with cache state carried across windows.

    Unlike simulating each window in isolation, the protocol state
    persists, so the numbers reflect the phase behaviour of a single
    continuous run (no artificial cold-start in every window).
    """
    if window_size < 1:
        raise ConfigurationError("window_size must be >= 1")
    simulator = simulator or Simulator()
    # Build the protocol once; feed windows through the same instance,
    # with first-reference and sharer state carried across segments.
    sharers = trace.pids if simulator.sharer_key == "pid" else trace.cpus
    from repro.core.simulator import SimulationContext
    from repro.protocols.registry import make_protocol

    protocol = make_protocol(scheme, max(1, len(sharers)))
    context = SimulationContext()

    costs: list[WindowCost] = []
    offset = 0
    for window in windows(trace, window_size):
        result = simulator.run(
            window, protocol, trace_name=window.name, context=context
        )
        stats = compute_statistics(window.records, window.name)
        costs.append(
            WindowCost(
                start=offset,
                end=offset + len(window),
                bus_cycles_per_reference=result.bus_cycles_per_reference(bus),
                data_miss_fraction=result.frequencies().data_miss_fraction,
                spin_fraction=(
                    stats.spin_reads / stats.total_refs if stats.total_refs else 0.0
                ),
            )
        )
        offset += len(window)
    return costs


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render values as a one-line ASCII sparkline (8 levels)."""
    if not values:
        return ""
    glyphs = " .:-=+*#@"
    peak = max(values)
    if len(values) > width:
        # Downsample by averaging buckets.
        bucket_size = len(values) / width
        resampled = []
        for index in range(width):
            low = int(index * bucket_size)
            high = max(low + 1, int((index + 1) * bucket_size))
            chunk = values[low:high]
            resampled.append(sum(chunk) / len(chunk))
        values = resampled
        peak = max(values)
    if peak == 0:
        return glyphs[0] * len(values)
    return "".join(
        glyphs[min(len(glyphs) - 1, int(value / peak * (len(glyphs) - 1) + 0.5))]
        for value in values
    )
