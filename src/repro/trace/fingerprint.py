"""Incremental, representation-independent trace fingerprinting.

The result cache, the fabric's fleet-wide dedup, and the service's
cell coalescing all key on a SHA-256 of the trace *content*: one
canonical ``cpu pid type address flags`` ASCII line per record, after
a fixed header.  Historically that hash was computed by a single
function over a materialized trace; the chunked on-disk store
(:mod:`repro.store`) needs to fingerprint traces far larger than RAM,
so the hash is now built around :class:`TraceHasher` — an incremental
hasher that any representation (record lists, columnar arrays, on-disk
chunks) can feed piece by piece.

The byte stream hashed is identical for every representation — and
identical to the pre-refactor digests — so existing ResultCache
entries and fabric dedup keys remain valid
(``tests/test_store_roundtrip.py`` holds the three-way agreement).
"""

from __future__ import annotations

from typing import Any, Iterable

import hashlib

from repro.trace.record import RefType, TraceRecord

#: Domain-separation header; bump the suffix if the line format changes.
FP_HEADER = b"repro-trace-fp-v1\n"

_REF_CODES = {RefType.INSTR: 0, RefType.READ: 1, RefType.WRITE: 2}

#: Records per hashed batch when feeding columns (bounds the temporary
#: line-string memory while keeping the Python-level loop amortized).
_BATCH = 1 << 16


class TraceHasher:
    """Streaming builder of the canonical trace content digest.

    Feed records or column batches in trace order — mixing the two is
    fine, the hashed byte stream depends only on the record values —
    then read :meth:`hexdigest`.
    """

    __slots__ = ("_digest",)

    def __init__(self) -> None:
        self._digest = hashlib.sha256(FP_HEADER)

    def update_records(self, records: Iterable[TraceRecord]) -> None:
        """Hash a run of :class:`TraceRecord` objects in order."""
        update = self._digest.update
        codes = _REF_CODES
        for record in records:
            flags = (
                (1 if record.system else 0)
                | (2 if record.lock else 0)
                | (4 if record.spin else 0)
            )
            update(
                f"{record.cpu} {record.pid} {codes[record.ref_type]} "
                f"{record.address} {flags}\n".encode("ascii")
            )

    def update_columns(
        self,
        cpu: Any,
        pid: Any,
        type_code: Any,
        address: Any,
        flags: Any,
    ) -> None:
        """Hash one run of parallel columns (the columnar layouts).

        Accepts any sliceable int sequences (``array('Q')``, ``bytes``,
        ``memoryview`` casts); produces exactly the bytes
        :meth:`update_records` would for the equivalent records.
        """
        update = self._digest.update
        total = len(type_code)
        for start in range(0, total, _BATCH):
            stop = min(start + _BATCH, total)
            update(
                "".join(
                    f"{c} {p} {t} {a} {f}\n"
                    for c, p, t, a, f in zip(
                        cpu[start:stop],
                        pid[start:stop],
                        type_code[start:stop],
                        address[start:stop],
                        flags[start:stop],
                    )
                ).encode("ascii")
            )

    def hexdigest(self) -> str:
        """The digest over everything fed so far (non-destructive)."""
        return self._digest.hexdigest()


def fingerprint_trace(trace: Any) -> str:
    """Content hash of a trace, independent of its representation.

    Hashes one canonical ``cpu pid type address flags`` line per record
    in order.  The trace's name and description are deliberately
    excluded: two differently-named traces with identical records are
    the same workload.  Dispatches on representation:

    * objects exposing ``fingerprint_into(hasher)`` (the chunked store)
      stream themselves through the hasher chunk by chunk;
    * :class:`~repro.trace.columnar.ColumnarTrace` feeds its columns in
      one call;
    * anything else is treated as (or iterated for) records.
    """
    from repro.trace.columnar import ColumnarTrace

    hasher = TraceHasher()
    feed = getattr(trace, "fingerprint_into", None)
    if feed is not None:
        feed(hasher)
    elif isinstance(trace, ColumnarTrace):
        hasher.update_columns(
            trace.cpu, trace.pid, trace.type_code, trace.address, trace.flags
        )
    else:
        hasher.update_records(
            trace.records if hasattr(trace, "records") else trace
        )
    return hasher.hexdigest()
