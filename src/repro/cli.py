"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show available protocols and workloads.
* ``generate`` — write a synthetic workload trace to a file.
* ``trace`` — the chunked store (``.ctrc``, see ``docs/TRACESTORE.md``):
  ``trace pack`` converts any trace file, ``trace info`` inspects an
  index (``--verify`` re-hashes the content), ``trace gen`` streams a
  workload straight to disk at bounded memory.  Every command that
  accepts a trace file also accepts ``.ctrc`` transparently.
* ``stats`` — Table-3 style statistics of a trace file or workload.
* ``simulate`` — run one or more schemes over a trace and report bus
  cycles per reference under both bus models.
* ``artifact`` — regenerate one of the paper's tables/figures by id
  (``table1`` .. ``table5``, ``figure1`` .. ``figure5``,
  ``section51``, ``section52``, ``section6-sequential``,
  ``section6-dir1b``, ``section6-sweep``, ``section6-storage``,
  ``section5-system``, or ``all``).
* ``report`` — write the complete evaluation to a Markdown file.
* ``verify`` — the conformance gate.  By default, exhaustively explore
  each protocol's single-block state space; ``--fuzz N`` drives seeded
  adversarial traces through the unified harness (oracle + invariants +
  cross-protocol differentials, with automatic failure shrinking),
  ``--corpus DIR`` replays the golden regression corpus, and
  ``--mutation`` asserts the fault-injection kill rate (see
  ``docs/VERIFICATION.md``).
* ``run`` — fault-tolerant sweep: schemes × traces with per-cell error
  isolation, retry with backoff, and ``--checkpoint``/``--resume``.
* ``serve`` — run the simulation service (HTTP/JSON job API backed by
  the parallel executor and result cache; see ``docs/SERVICE.md``).
  ``--fabric-db`` switches cell execution to the durable worker fleet.
* ``submit`` — POST a sweep job to a running service (``--wait`` /
  ``--stream`` follow it to completion).
* ``status`` — query a running service: server stats, or one job.
* ``work`` — join a durable fleet: lease cells from a fabric database
  (``--db``), simulate, heartbeat, settle; exits when the queue drains.
* ``dlq`` — list a fabric database's dead-letter queue (cells that
  burned through their attempt budget).
* ``chaos`` — the crash-recovery harness: run a sweep on N real worker
  processes, SIGKILL one mid-cell, assert results bit-identical to a
  serial run with exactly one reassignment and zero duplicates.

Failures map to distinct exit codes so scripts can react per category:
``TraceFormatError`` exits 3, ``ProtocolError``/``InvariantViolation``
exit 4, ``ConfigurationError`` exits 5, ``ServiceError`` exits 6,
``ConformanceError`` exits 7, any other ``ReproError`` exits 2.  The
failure category is printed on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.simulator import Simulator
from repro.cost.bus import non_pipelined_bus, pipelined_bus
from repro.errors import (
    ConfigurationError,
    ConformanceError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    ServiceError,
    TraceFormatError,
)
from repro.protocols.registry import available_protocols
from repro.report.experiments import PaperExperiments
from repro.report.tables import format_table
from repro.store.format import DEFAULT_CHUNK_RECORDS
from repro.trace.io import (
    DecodeReport,
    load_trace,
    write_trace_binary,
    write_trace_file,
)
from repro.trace.stats import compute_statistics
from repro.trace.stream import Trace
from repro.workloads.micro import MICRO_GENERATORS
from repro.workloads.modern import MODERN_GENERATORS
from repro.workloads.registry import (
    DEFAULT_LENGTH,
    available_workloads,
    make_trace,
)


def workload_choices() -> list[str]:
    """Full workloads plus ``micro-`` and ``modern-`` generator names."""
    return (
        available_workloads()
        + [f"micro-{name}" for name in MICRO_GENERATORS]
        + [f"modern-{name}" for name in MODERN_GENERATORS]
    )


def _make_any_trace(name: str, length: int, seed: int | None = None) -> Trace:
    kwargs = {} if seed is None else {"seed": seed}
    if name.startswith("micro-"):
        return MICRO_GENERATORS[name[len("micro-"):]](length=length, **kwargs)
    if name.startswith("modern-"):
        return MODERN_GENERATORS[name[len("modern-"):]](length=length, **kwargs)
    return make_trace(name, length=length, **kwargs)

_ARTIFACT_IDS = (
    "table1", "table2", "table3", "table4", "table5",
    "figure1", "figure2", "figure3", "figure4", "figure5",
    "section51", "section52", "section6-sequential", "section6-dir1b",
    "section6-sweep", "section6-storage", "section5-system",
    "finite-capacity", "conclusions",
)


def _load_trace(path: str, lenient: bool = False, lazy: bool = False) -> Trace:
    """Read a trace file, auto-detecting text vs binary format."""
    if lazy:
        return load_trace(path, lazy=True, lenient=lenient)
    report = DecodeReport()
    trace = load_trace(path, lenient=lenient, report=report)
    if report.skipped:
        print(f"warning: {path}: {report.summary()}", file=sys.stderr)
    return trace


def _resolve_trace(args) -> Trace:
    """A trace from ``--trace-file`` or generated from ``--workload``."""
    if getattr(args, "trace_file", None):
        return _load_trace(args.trace_file)
    return _make_any_trace(args.workload, length=args.length)


def cmd_list(args) -> int:
    """``repro list``: print protocols and workloads.

    ``--json`` emits the machine-readable registry the service client
    uses to validate job specs without importing this package.
    """
    if getattr(args, "json", False):
        print(
            json.dumps(
                {
                    "protocols": list(available_protocols()),
                    "workloads": workload_choices(),
                    "sharer_keys": ["pid", "cpu"],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print("protocols:")
    for name in available_protocols():
        print(f"  {name}")
    print("workloads:")
    for name in workload_choices():
        print(f"  {name}")
    return 0


def cmd_generate(args) -> int:
    """``repro generate``: write a synthetic trace file."""
    trace = _make_any_trace(args.workload, length=args.length, seed=args.seed)
    if args.format == "binary":
        count = write_trace_binary(trace.records, args.output)
    else:
        count = write_trace_file(trace.records, args.output)
    print(f"wrote {count:,} records of '{trace.name}' to {args.output}")
    return 0


def cmd_trace_pack(args) -> int:
    """``repro trace pack``: convert any trace file to a ``.ctrc`` store."""
    from repro.store import pack_trace

    trace = _load_trace(args.input, lenient=args.lenient, lazy=True)
    meta = pack_trace(
        trace,
        args.output,
        codec=args.codec,
        chunk_records=args.chunk_records,
        level=args.level,
    )
    print(
        f"packed {meta['records']:,} records of '{meta['name']}' into "
        f"{len(meta['chunks'])} {args.codec} chunks at {args.output}"
    )
    return 0


def cmd_trace_info(args) -> int:
    """``repro trace info``: inspect a ``.ctrc`` store's index."""
    from repro.store import ChunkedTrace

    with ChunkedTrace(args.path) as trace:
        meta = trace.meta
        if args.json:
            payload = dict(meta)
            if args.verify:
                payload["verified_fingerprint"] = trace.fingerprint()
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        stored = sum(chunk.length for chunk in trace.chunks)
        raw = len(trace) * 26
        rows = [
            ("name", meta.get("name", "")),
            ("records", f"{len(trace):,}"),
            ("chunks", trace.num_chunks),
            ("chunk records", meta.get("chunk_records", "")),
            ("codecs", ", ".join(sorted({c.codec for c in trace.chunks})) or "-"),
            ("stored bytes", f"{stored:,}"),
            ("raw bytes", f"{raw:,}"),
            ("compression", f"{raw / stored:.2f}x" if stored else "-"),
            ("cpus", len(trace.cpus)),
            ("pids", len(trace.pids)),
            ("fingerprint", meta.get("fingerprint", "")[:16] + "..."),
        ]
        if args.verify:
            verified = trace.fingerprint()
            rows.append(
                (
                    "content check",
                    "OK" if verified == meta.get("fingerprint") else
                    f"MISMATCH ({verified[:16]}...)",
                )
            )
        print(format_table(["field", "value"], rows, title=f"store {args.path}"))
        if args.verify and trace.fingerprint() != meta.get("fingerprint"):
            return 1
    return 0


def cmd_trace_gen(args) -> int:
    """``repro trace gen``: stream a workload straight into a ``.ctrc`` file.

    The workload generator and the chunked writer both run at bounded
    memory, so the trace length is limited by disk, not RAM.
    """
    from repro.store import StreamingTraceWriter
    from repro.workloads.registry import stream_trace

    if args.workload.startswith("micro-"):
        # Micro generators are small by design; materialize then stream.
        trace = _make_any_trace(args.workload, length=args.length, seed=args.seed)
        records = iter(trace.records)
    else:
        kwargs = {} if args.seed is None else {"seed": args.seed}
        records = stream_trace(args.workload, length=args.length, **kwargs)
    with StreamingTraceWriter(
        args.output,
        args.workload,
        codec=args.codec,
        chunk_records=args.chunk_records,
        level=args.level,
    ) as writer:
        for record in records:
            writer.append(record)
    meta = writer.close()
    print(
        f"streamed {meta['records']:,} records of '{args.workload}' into "
        f"{len(meta['chunks'])} {args.codec} chunks at {args.output}"
    )
    return 0


def cmd_stats(args) -> int:
    """``repro stats``: summarize a trace."""
    trace = _resolve_trace(args)
    stats = compute_statistics(trace.records, trace.name)
    rows = [
        ("references", stats.total_refs),
        ("instructions", stats.instr_refs),
        ("data reads", stats.data_reads),
        ("data writes", stats.data_writes),
        ("user refs", stats.user_refs),
        ("system refs", stats.system_refs),
        ("lock refs", stats.lock_refs),
        ("spin reads", stats.spin_reads),
        ("read/write ratio", round(stats.read_write_ratio, 2)),
        ("spin share of reads %", round(100 * stats.spin_read_fraction_of_reads, 2)),
    ]
    print(format_table(["statistic", "value"], rows, title=f"trace '{trace.name}'"))
    return 0


def cmd_simulate(args) -> int:
    """``repro simulate``: run schemes over a trace.

    ``--geometry LINESxASSOC[@dir:N]`` simulates finite caches (and,
    with ``@dir:N``, a finite directory); schemes may also carry their
    own ``@geometry`` suffix, which wins over the flag.
    """
    from repro.core.experiment import parse_scheme, scheme_key

    trace = _resolve_trace(args)
    simulator = Simulator(sharer_key=args.sharer_key)
    pipe, nonpipe = pipelined_bus(), non_pipelined_bus()
    rows = []
    for spec in args.schemes:
        name, options = parse_scheme(spec)
        if args.geometry is not None and "geometry" not in options:
            options["geometry"] = args.geometry
        key = scheme_key(name, options)
        result = simulator.run(trace, name, **options)
        frequencies = result.frequencies()
        rows.append(
            (
                key,
                result.bus_cycles_per_reference(pipe),
                result.bus_cycles_per_reference(nonpipe),
                100 * frequencies.data_miss_fraction,
                result.transactions_per_reference(),
            )
        )
    print(format_table(
        ["scheme", "cyc/ref (pipe)", "cyc/ref (non-pipe)", "miss %", "txn/ref"],
        rows,
        title=f"trace '{trace.name}' ({len(trace):,} refs)",
    ))
    return 0


def cmd_artifact(args) -> int:
    """``repro artifact``: regenerate a paper table/figure."""
    experiments = PaperExperiments(length=args.length)
    if args.id == "all":
        for artifact in experiments.all_artifacts():
            print(artifact.text)
            print()
        return 0
    method = getattr(experiments, args.id.replace("-", "_"))
    print(method().text)
    return 0


def cmd_report(args) -> int:
    """``repro report``: write the Markdown evaluation report."""
    from repro.report.markdown import write_report

    path = write_report(args.output, length=args.length)
    print(f"wrote evaluation report to {path}")
    return 0


def cmd_transitions(args) -> int:
    """``repro transitions``: print a derived transition table."""
    from repro.report.transitions import transition_table_text

    caches = args.caches
    if args.scheme == "coarse-vector" and caches & (caches - 1):
        caches = 4
    print(transition_table_text(args.scheme, num_caches=caches))
    return 0


def _shrink_fuzz_failures(args, report, traces) -> None:
    """Reduce failing fuzz traces and optionally bank them in the corpus."""
    from repro.verify import ConformanceSpec, Corpus, failure_predicate, shrink_trace

    corpus = Corpus(args.update_corpus) if args.update_corpus else None
    by_name = {trace.name: trace for trace in traces}
    for finding in report.findings:
        if finding.scheme == "*":  # differential findings have no one cell
            continue
        trace = by_name.get(finding.trace_name)
        if trace is None:
            continue
        predicate = failure_predicate(ConformanceSpec(finding.scheme))
        if not predicate(trace.records):
            continue  # not reproducible as a lone in-process cell
        minimized = shrink_trace(trace, predicate)
        print(
            f"shrunk {finding.trace_name} for {finding.scheme}: "
            f"{len(trace.records)} -> {len(minimized.records)} refs",
            file=sys.stderr,
        )
        if corpus is not None:
            path = corpus.save(
                minimized,
                {
                    "scheme": finding.scheme,
                    "kind": finding.kind,
                    "seed": args.seed,
                    "source": finding.trace_name,
                },
            )
            if path is not None:
                print(f"saved reproducer: {path}", file=sys.stderr)


def cmd_verify(args) -> int:
    """``repro verify``: the unified conformance gate.

    With no mode flags this is the historical behavior: model-check
    each scheme's single-block state space (exit 1 on violations).  The
    conformance modes — ``--fuzz``, ``--corpus``, ``--mutation`` — run
    the :mod:`repro.verify` harness instead and raise
    :class:`~repro.errors.ConformanceError` (exit 7) on any failure.
    """
    from repro.core.statespace import default_caches_for, explore_block_states

    if not (args.fuzz or args.corpus or args.mutation):
        failures = 0
        for scheme in args.schemes:
            num_caches = default_caches_for(scheme, args.caches)
            report = explore_block_states(scheme, num_caches=num_caches)
            status = "ok" if report.clean else "INVARIANT VIOLATIONS"
            print(
                f"{scheme:14s} caches={num_caches} states={report.states:5d} "
                f"transitions={report.transitions:6d} {status}"
            )
            for violation in report.violations[:5]:
                print(f"    {violation}")
            failures += 0 if report.clean else 1
        return 1 if failures else 0

    from repro.verify import (
        ConformanceChecker,
        Corpus,
        TraceFuzzer,
        run_mutation_testing,
    )

    problems: list[str] = []
    checker = ConformanceChecker(schemes=args.schemes, jobs=args.jobs)

    if args.corpus:
        corpus = Corpus(args.corpus)
        report = corpus.replay(checker)
        print(
            f"corpus: {len(corpus)} reproducers, {report.cells} cells, "
            f"{len(report.findings)} findings"
        )
        for finding in report.findings:
            print(f"  {finding}", file=sys.stderr)
        if report.findings:
            problems.append(f"corpus replay: {len(report.findings)} findings")

    if args.fuzz:
        fuzzer = TraceFuzzer(seed=args.seed)
        traces = list(fuzzer.traces(args.fuzz))
        geometries: list = [None]
        if args.finite_geometry:
            geometries.append(args.finite_geometry)
        report = checker.check(traces, specs=checker.specs_for(geometries))
        print(
            f"fuzz: seed={args.seed} traces={len(traces)} "
            f"schemes={len(report.schemes)} cells={report.cells} "
            f"findings={len(report.findings)}"
        )
        print(f"digest: {report.digest()}")
        for finding in report.findings:
            print(f"  {finding}", file=sys.stderr)
        if report.findings:
            problems.append(f"fuzz: {len(report.findings)} findings")
            if not args.no_shrink:
                _shrink_fuzz_failures(args, report, traces)

    if args.mutation:
        mutation = run_mutation_testing(
            schemes=args.schemes, seed=args.seed, jobs=args.jobs
        )
        print(f"mutation: {mutation.summary()}")
        if mutation.survivors:
            problems.append(f"mutation: {len(mutation.survivors)} survivors")
        from repro.verify import run_eviction_mutation_testing

        eviction = run_eviction_mutation_testing(
            schemes=args.schemes, seed=args.seed
        )
        print(f"eviction mutation: {eviction.summary()}")
        if eviction.survivors:
            problems.append(
                f"eviction mutation: {len(eviction.survivors)} survivors"
            )

    if problems:
        raise ConformanceError("; ".join(problems))
    print("conformance: ok")
    return 0


class _ProgressLines:
    """``--progress`` observer: per-cell engine events as stderr lines."""

    def plan_started(self, plan) -> None:
        pass

    def cell_started(self, task) -> None:
        pass

    def cell_retry(self, task, failed_attempts, error, delay) -> None:
        print(
            f"retrying {task.scheme_key} on {task.trace_name} "
            f"(attempt {failed_attempts} failed: {type(error).__name__}, "
            f"next in {delay:.2f}s)",
            file=sys.stderr,
        )

    def cell_finished(self, task, outcome) -> None:
        if outcome.ok:
            print(
                f"finished {task.scheme_key} on {task.trace_name} "
                f"in {outcome.duration_s:.2f}s "
                f"({outcome.attempts} attempt{'s' if outcome.attempts != 1 else ''})",
                file=sys.stderr,
            )
        else:
            print(
                f"failed {task.scheme_key} on {task.trace_name}: "
                f"{outcome.category}: {outcome.message}",
                file=sys.stderr,
            )

    def cache_hit(self, task) -> None:
        print(
            f"cache hit: {task.scheme_key} on {task.trace_name}", file=sys.stderr
        )

    def cache_miss(self, task) -> None:
        pass

    def plan_finished(self, plan, result) -> None:
        pass


def cmd_run(args) -> int:
    """``repro run``: fault-tolerant sweep with checkpoint/resume.

    A thin shell over :class:`repro.engine.core.Engine` — the same
    instrumented executor behind :class:`ResilientExperiment` and the
    simulation service.
    """
    from repro.engine import (
        Engine,
        EngineMetrics,
        ExecutionPlan,
        ObserverGroup,
        RetryPolicy,
    )
    from repro.runner.cache import ResultCache
    from repro.runner.checkpoint import CheckpointManager
    from repro.trace.columnar import ColumnarTrace

    # Trace files are read lazily so a corrupt file is contained inside
    # its own cells instead of aborting the whole sweep at load time.
    traces = []
    for path in args.trace_files or []:
        traces.append(_load_trace(path, lenient=args.lenient, lazy=True))
    for workload in args.workloads or []:
        traces.append(_make_any_trace(workload, length=args.length))
    if not traces:
        traces = [_make_any_trace("pops", length=args.length)]
    if args.columnar:
        # Opt-in fast path: pack eagerly-loaded traces into columns
        # (bit-identical results; lazy files keep their containment).
        traces = [
            ColumnarTrace.from_trace(trace) if isinstance(trace, Trace) else trace
            for trace in traces
        ]

    plan = ExecutionPlan(
        traces=traces,
        schemes=list(args.schemes),
        simulator=Simulator(sharer_key=args.sharer_key),
    )
    metrics = EngineMetrics()
    observers = [metrics]
    if args.progress:
        observers.append(_ProgressLines())
    engine = Engine(
        retry=RetryPolicy(max_attempts=args.retries, backoff_base=args.backoff),
        strict=args.strict,
        checkpoint=CheckpointManager(args.checkpoint) if args.checkpoint else None,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        jobs=args.jobs,
        batch=args.batch,
        result_cache=ResultCache(args.result_cache) if args.result_cache else None,
        observer=ObserverGroup(observers),
    )

    def progress(scheme: str, trace_name: str) -> None:
        print(f"running {scheme} on {trace_name} ...", file=sys.stderr)

    outcome = engine.run(plan, progress=progress)

    if args.progress:
        counters = metrics.snapshot()
        print(
            "engine: "
            f"{int(counters.get('cells_ok', 0))} ok, "
            f"{int(counters.get('cells_failed', 0))} failed, "
            f"{int(counters.get('cell_retries', 0))} retries, "
            f"{int(counters.get('cache_hits', 0))} cache hits, "
            f"{int(counters.get('cache_misses', 0))} cache misses, "
            f"{counters.get('sim_seconds', 0.0):.2f}s simulating",
            file=sys.stderr,
        )

    pipe, nonpipe = pipelined_bus(), non_pipelined_bus()
    rows = []
    for scheme in outcome.schemes:
        for trace_name, result in outcome.results[scheme].items():
            rows.append(
                (
                    scheme,
                    trace_name,
                    result.bus_cycles_per_reference(pipe),
                    result.bus_cycles_per_reference(nonpipe),
                    100 * result.frequencies().data_miss_fraction,
                )
            )
    if rows:
        print(format_table(
            ["scheme", "trace", "cyc/ref (pipe)", "cyc/ref (non-pipe)", "miss %"],
            rows,
            title=f"resilient sweep ({len(rows)} cells ok)",
        ))
    failures = outcome.all_failures()
    for failure in failures:
        print(f"cell failed: {failure}", file=sys.stderr)
    if failures:
        print(
            f"{len(failures)} of {len(rows) + len(failures)} cells failed",
            file=sys.stderr,
        )
    return 1 if failures else 0


def cmd_bench(args) -> int:
    """``repro bench``: measured throughput with history and gates.

    Measures the serial columnar/kernel fast path per scheme and the
    pooled sweep at several worker counts (warmup + best-of-repeats),
    refreshes ``BENCH_throughput.json``, appends to
    ``BENCH_history.jsonl``, and exits nonzero when a headline metric
    regresses more than ``--threshold`` below its rolling baseline (or
    when ``--gate-scaling`` finds jobs=4 slower than jobs=1).
    """
    import json as json_module
    from pathlib import Path

    from repro.report import bench

    report = bench.build_report(
        length=args.length,
        schemes=args.schemes,
        jobs_list=tuple(args.jobs),
        repeats=args.repeats,
        warmup=args.warmup,
        batch=args.batch,
    )

    rows = [
        (
            scheme,
            entry["record_refs_per_sec"],
            entry["columnar_refs_per_sec"],
            entry["speedup_columnar_vs_record"],
        )
        for scheme, entry in report["schemes"].items()
    ]
    print(format_table(
        ["scheme", "record refs/s", "columnar refs/s", "speedup"],
        rows,
        title=f"serial throughput ({args.length} refs, best of {args.repeats})",
    ))
    finite = report.get("finite")
    if finite is not None:
        print(format_table(
            ["scheme", "finite refs/s", "infinite refs/s", "slowdown"],
            [
                (
                    scheme,
                    entry["finite_refs_per_sec"],
                    entry["infinite_refs_per_sec"],
                    entry["slowdown_vs_infinite"],
                )
                for scheme, entry in finite["schemes"].items()
            ],
            title=f"finite-capacity kernels ({finite['geometry']})",
        ))
    streaming = report.get("streaming")
    if streaming is not None:
        print(format_table(
            ["scheme", "chunked refs/s"],
            [
                (scheme, entry["chunked_refs_per_sec"])
                for scheme, entry in streaming["schemes"].items()
            ],
            title=(
                f"chunk-streamed .ctrc ({streaming['chunks']} chunks, "
                f"{streaming['compression']}x compression, peak rss "
                f"{streaming['peak_rss_mb']} MB)"
            ),
        ))
    sweep = report["parallel_sweep"]
    print(format_table(
        ["jobs", "seconds", "refs/s"],
        [
            (jobs, sweep["seconds_by_jobs"][jobs], rate)
            for jobs, rate in sweep["refs_per_sec_by_jobs"].items()
        ],
        title=f"pooled sweep ({sweep['cells']} cells, {sweep['refs_total']} refs)",
    ))
    full = report.get("parallel_sweep_full_roster")
    if full is not None:
        print(format_table(
            ["jobs", "seconds", "refs/s"],
            [
                (jobs, full["seconds_by_jobs"][jobs], rate)
                for jobs, rate in full["refs_per_sec_by_jobs"].items()
            ],
            title=(
                f"full-roster sweep ({full['cells']} cells, "
                f"{full['refs_total']} refs)"
            ),
        ))

    history_path = Path(args.history)
    history = bench.load_history(history_path)
    problems: list[str] = []
    if not args.no_regression_gate:
        problems.extend(
            bench.find_regressions(report, history, threshold=args.threshold)
        )
        problems.extend(bench.finite_kernel_violations(report))
    if args.gate_scaling:
        if report.get("cpu_cores", 0) < 2:
            print(
                "bench gate: scaling gate skipped — only "
                f"{report.get('cpu_cores')} usable CPU core(s), parallel "
                "speedup is not measurable here",
                file=sys.stderr,
            )
        violation = bench.scaling_violation(report)
        if violation is not None:
            problems.append(violation)

    if not args.no_history:
        bench.append_history(report, history_path)
    json_path = Path(args.json)
    json_path.write_text(
        json_module.dumps(report, indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {json_path} and {history_path}", file=sys.stderr)

    for problem in problems:
        print(f"bench gate: {problem}", file=sys.stderr)
    return 1 if problems else 0


def cmd_serve(args) -> int:
    """``repro serve``: run the simulation service until SIGTERM/SIGINT."""
    import signal

    from repro.engine import RetryPolicy
    from repro.runner.cache import ResultCache
    from repro.service.api import ServiceServer
    from repro.service.scheduler import Scheduler

    scheduler = Scheduler(
        workers=args.workers,
        sim_jobs=args.jobs,
        result_cache=ResultCache(args.result_cache) if args.result_cache else None,
        state_dir=args.state_dir,
        retry=RetryPolicy(max_attempts=args.retries),
        fabric_db=args.fabric_db,
        fabric_workers=args.fabric_workers,
        lease_s=args.lease,
    )
    server = ServiceServer(scheduler, host=args.host, port=args.port)

    default_mode = "checkpoint" if args.state_dir else "drain"

    def on_signal(_signum, _frame) -> None:
        # SIGINT and SIGTERM take the same graceful path; repeats while
        # the event is already set are no-ops, not a second shutdown.
        server.stop_event.set()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)

    server.start()
    print(f"repro service listening on {server.url}", flush=True)
    if args.state_dir:
        print(f"state dir: {args.state_dir} (checkpoint shutdown)", flush=True)
    if args.fabric_db:
        print(
            f"fabric db: {args.fabric_db} "
            f"({args.fabric_workers} in-process workers)",
            flush=True,
        )
    try:
        while not server.stop_event.wait(0.2):
            pass
    finally:
        # An impatient ^C ^C must not raise KeyboardInterrupt inside
        # the checkpoint write and tear a half-persisted state dir.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        mode = server.requested_shutdown_mode or default_mode
        try:
            print(f"shutting down ({mode}) ...", file=sys.stderr, flush=True)
        except OSError:
            # ^C in a pipeline (`repro serve | tee ...`) kills the pipe
            # peer too; a dead stderr must not skip the checkpoint.
            pass
        server.stop(mode=mode, timeout=args.drain_timeout)
    return 0


def cmd_work(args) -> int:
    """``repro work``: one durable-fleet member on a fabric database."""
    import signal

    from repro.fabric.chaos import hook_from_env
    from repro.fabric.worker import FabricWorker
    from repro.runner.cache import ResultCache

    worker = FabricWorker(
        args.db,
        worker_id=args.worker_id,
        result_cache=ResultCache(args.cache) if args.cache else None,
        lease_s=args.lease,
        poll_s=args.poll,
        drain=not args.forever,
        protocol_hook=hook_from_env(),
    )

    def on_signal(_signum, _frame) -> None:
        worker.stop()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)

    processed = worker.run(max_cells=args.max_cells)
    print(
        f"worker {worker.worker_id}: {processed} cells "
        f"({worker.settled['simulated']} simulated, "
        f"{worker.settled['cache']} cache, "
        f"{worker.settled['error']} errors)",
        file=sys.stderr,
    )
    return 0


def cmd_dlq(args) -> int:
    """``repro dlq``: list dead-lettered cells (exit 1 when any exist)."""
    from repro.fabric.queue import DurableCellQueue

    queue = DurableCellQueue(args.db)
    dead = queue.dead_letters()
    if args.json:
        print(json.dumps(dead, indent=2, sort_keys=True))
    elif not dead:
        print("dead-letter queue is empty")
    else:
        rows = [
            (
                entry["job_id"],
                entry["idx"],
                entry["scheme_key"],
                entry["trace_label"],
                f"{entry['attempts']}/{entry['max_attempts']}",
                entry["reassignments"],
                entry["last_category"] or "?",
            )
            for entry in dead
        ]
        print(format_table(
            ["job", "cell", "scheme", "trace", "attempts", "reassigned",
             "last error"],
            rows,
            title=f"dead letters in {args.db}",
        ))
    return 1 if dead else 0


def cmd_chaos(args) -> int:
    """``repro chaos``: kill-a-worker crash recovery, asserted end to end."""
    import tempfile
    from pathlib import Path

    from repro.fabric.chaos import run_chaos

    spec_payload = None
    if args.spec_file:
        with open(args.spec_file, "r", encoding="utf-8") as handle:
            spec_payload = json.load(handle)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        db = Path(args.db) if args.db else Path(scratch) / "fabric.db"
        report = run_chaos(
            db=db,
            spec_payload=spec_payload,
            workers=args.workers,
            seed=args.seed,
            kill=not args.no_kill,
            lease_s=args.lease,
            timeout_s=args.timeout,
        )
    print(json.dumps(report, indent=2, sort_keys=True))
    if not report["ok"]:
        failed = [name for name, ok in report["checks"].items() if not ok]
        print(f"chaos checks failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def cmd_submit(args) -> int:
    """``repro submit``: POST a sweep job to a running service."""
    from repro.service.client import ServiceClient

    if args.spec_file:
        with open(args.spec_file, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
    else:
        spec = {
            "schemes": list(args.schemes),
            "traces": [
                {"workload": workload, "length": args.length,
                 **({"seed": args.seed} if args.seed is not None else {})}
                for workload in args.workloads
            ] + [{"path": path} for path in (args.trace_files or [])],
            "sharer_key": args.sharer_key,
            "priority": args.priority,
            "dedup": args.dedup,
        }

    client = ServiceClient(args.server, timeout=args.timeout)
    job = client.submit(spec)
    job_id = job["id"]
    if not (args.wait or args.stream):
        print(json.dumps(job, indent=2, sort_keys=True))
        return 0
    failed_cells = 0
    for event in client.stream_events(job_id):
        if args.stream:
            print(json.dumps(event, sort_keys=True), flush=True)
        if event.get("type") == "cell" and event.get("status") == "error":
            failed_cells += 1
        if event.get("type") == "job" and event.get("state") in (
            "done", "failed", "cancelled"
        ):
            break
    final = client.job(job_id)
    if not args.stream:
        print(json.dumps(final, indent=2, sort_keys=True))
    if final.get("state") != "done" or failed_cells:
        return 1
    return 0


def cmd_status(args) -> int:
    """``repro status``: server stats, or one job's status."""
    from repro.service.client import ServiceClient

    client = ServiceClient(args.server, timeout=args.timeout)
    if args.job_id:
        print(json.dumps(client.job(args.job_id), indent=2, sort_keys=True))
    else:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Trace-driven evaluation of directory schemes for cache coherence "
            "(Agarwal, Simoni, Hennessy & Horowitz, ISCA 1988)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list protocols and workloads")
    list_cmd.add_argument(
        "--json", action="store_true",
        help="machine-readable registry (for service clients / job specs)",
    )
    list_cmd.set_defaults(func=cmd_list)

    generate = sub.add_parser("generate", help="write a synthetic trace to a file")
    generate.add_argument("workload", choices=workload_choices())
    generate.add_argument("output")
    generate.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--format", choices=("text", "binary"), default="text")
    generate.set_defaults(func=cmd_generate)

    trace = sub.add_parser(
        "trace", help="chunked trace store (.ctrc): pack, inspect, generate"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def add_store_options(command):
        """Writer knobs shared by the pack and gen verbs."""
        command.add_argument(
            "--codec", choices=("zlib", "raw"), default="zlib",
            help="per-chunk storage codec (raw decodes zero-copy from mmap)",
        )
        command.add_argument(
            "--chunk-records", type=int, default=DEFAULT_CHUNK_RECORDS,
            metavar="N", help="references per chunk (the memory granule)",
        )
        command.add_argument(
            "--level", type=int, default=6,
            help="zlib compression level (ignored for raw)",
        )

    pack = trace_sub.add_parser(
        "pack", help="convert a text/binary/ctrc trace file to .ctrc"
    )
    pack.add_argument("input")
    pack.add_argument("output")
    pack.add_argument("--lenient", action="store_true")
    add_store_options(pack)
    pack.set_defaults(func=cmd_trace_pack)

    info = trace_sub.add_parser("info", help="inspect a .ctrc store's index")
    info.add_argument("path")
    info.add_argument("--json", action="store_true")
    info.add_argument(
        "--verify", action="store_true",
        help="re-hash every chunk and check the stored fingerprint",
    )
    info.set_defaults(func=cmd_trace_info)

    gen = trace_sub.add_parser(
        "gen", help="stream a workload straight to .ctrc at bounded memory"
    )
    gen.add_argument("workload", choices=workload_choices())
    gen.add_argument("output")
    gen.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    gen.add_argument("--seed", type=int, default=None)
    add_store_options(gen)
    gen.set_defaults(func=cmd_trace_gen)

    def add_trace_source(command):
        """Attach the --workload/--trace-file option group."""
        source = command.add_mutually_exclusive_group()
        source.add_argument("--workload", choices=workload_choices(), default="pops")
        source.add_argument("--trace-file")
        command.add_argument("--length", type=int, default=DEFAULT_LENGTH)

    stats = sub.add_parser("stats", help="summarize a trace")
    add_trace_source(stats)
    stats.set_defaults(func=cmd_stats)

    simulate = sub.add_parser("simulate", help="run schemes over a trace")
    add_trace_source(simulate)
    simulate.add_argument(
        "--schemes",
        nargs="+",
        default=["dir1nb", "wti", "dir0b", "dragon"],
        metavar="SCHEME",
    )
    simulate.add_argument("--sharer-key", choices=("pid", "cpu"), default="pid")
    simulate.add_argument(
        "--geometry", default=None, metavar="LINESxASSOC[@dir:N]",
        help="finite cache geometry for every scheme (e.g. 1024x4); "
             "per-scheme '@' suffixes like dir0b@1024x4 take precedence",
    )
    simulate.set_defaults(func=cmd_simulate)

    artifact = sub.add_parser("artifact", help="regenerate a paper table/figure")
    artifact.add_argument("id", choices=_ARTIFACT_IDS + ("all",))
    artifact.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    artifact.set_defaults(func=cmd_artifact)

    report = sub.add_parser("report", help="write the full evaluation as Markdown")
    report.add_argument("output")
    report.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    report.set_defaults(func=cmd_report)

    verify = sub.add_parser(
        "verify",
        help="conformance gate: statespace model checking, seeded trace "
             "fuzzing, corpus replay, mutation testing",
    )
    verify.add_argument(
        "--schemes", nargs="+", default=list(available_protocols()), metavar="SCHEME"
    )
    verify.add_argument("--caches", type=int, default=3)
    verify.add_argument(
        "--fuzz", type=int, default=0, metavar="N",
        help="run N seeded adversarial traces through the conformance "
             "harness (oracle + invariants + cross-protocol differentials)",
    )
    verify.add_argument(
        "--seed", type=int, default=0,
        help="fuzz campaign seed (equal seeds give byte-identical runs)",
    )
    verify.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for conformance cells (default 1 = serial)",
    )
    verify.add_argument(
        "--corpus", metavar="DIR",
        help="replay the golden reproducer corpus in DIR (all must pass)",
    )
    verify.add_argument(
        "--update-corpus", metavar="DIR",
        help="save minimized reproducers of new fuzz failures into DIR",
    )
    verify.add_argument(
        "--no-shrink", action="store_true",
        help="skip minimizing failing fuzz traces",
    )
    verify.add_argument(
        "--mutation", action="store_true",
        help="mutation-test the gate itself: every fault-injected "
             "protocol mutant must be detected (100%% kill rate), "
             "including finite-capacity eviction-logic saboteurs",
    )
    verify.add_argument(
        "--finite-geometry", metavar="LINESxASSOC", dest="finite_geometry",
        help="also run every fuzz cell under this finite cache geometry "
             "(engages the oracle's eviction audit)",
    )
    verify.set_defaults(func=cmd_verify)

    transitions = sub.add_parser(
        "transitions", help="print a protocol's derived transition table"
    )
    transitions.add_argument("scheme", choices=available_protocols())
    transitions.add_argument("--caches", type=int, default=3)
    transitions.set_defaults(func=cmd_transitions)

    run = sub.add_parser(
        "run", help="fault-tolerant sweep with retries and checkpoint/resume"
    )
    run.add_argument(
        "--workloads", nargs="+", choices=workload_choices(), metavar="WORKLOAD",
        help="synthetic workloads to include as traces",
    )
    run.add_argument(
        "--trace-files", nargs="+", metavar="FILE",
        help="trace files to include (text or binary, auto-detected)",
    )
    run.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    run.add_argument(
        "--schemes", nargs="+",
        default=["dir1nb", "wti", "dir0b", "dragon"], metavar="SCHEME",
    )
    run.add_argument("--sharer-key", choices=("pid", "cpu"), default="pid")
    run.add_argument(
        "--retries", type=int, default=3,
        help="attempts per cell for transient failures (default 3)",
    )
    run.add_argument(
        "--backoff", type=float, default=0.05,
        help="base retry backoff in seconds (doubles per retry)",
    )
    run.add_argument(
        "--strict", action="store_true",
        help="abort the sweep on the first permanent cell failure",
    )
    run.add_argument(
        "--lenient", action="store_true",
        help="skip malformed text-trace lines (within the error budget)",
    )
    run.add_argument(
        "--checkpoint", metavar="DIR",
        help="snapshot completed cells and mid-trace state into DIR",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=10_000, metavar="RECORDS",
        help="records between mid-cell snapshots (default 10000)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="continue from the checkpoint in --checkpoint DIR",
    )
    run.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for the sweep (default 1 = serial)",
    )
    run.add_argument(
        "--batch", type=int, default=None, metavar="CELLS",
        help="cells per pool dispatch when --jobs > 1 "
        "(default: auto-sized to ~4 batches per worker)",
    )
    run.add_argument(
        "--result-cache", metavar="DIR",
        help="cache cell results in DIR, keyed by trace content + scheme + config",
    )
    run.add_argument(
        "--columnar", action="store_true",
        help="pack in-memory traces into columns for the simulator fast path",
    )
    run.add_argument(
        "--progress", action="store_true",
        help="per-cell timing/retry/cache lines and an engine counter summary",
    )
    run.set_defaults(func=cmd_run)

    bench = sub.add_parser(
        "bench",
        help="measure throughput, track history, gate regressions",
    )
    bench.add_argument(
        "--length", type=int, default=60_000,
        help="records per synthetic trace (default 60000)",
    )
    bench.add_argument(
        "--schemes", nargs="+",
        default=["dir1nb", "wti", "dir0b", "dragon"], metavar="SCHEME",
    )
    bench.add_argument(
        "--jobs", nargs="+", type=int, default=[1, 2, 4], metavar="N",
        help="worker counts to sweep (default: 1 2 4)",
    )
    bench.add_argument(
        "--batch", type=int, default=None, metavar="CELLS",
        help="cells per pool dispatch (default: auto)",
    )
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--warmup", type=int, default=1)
    bench.add_argument(
        "--json", default="BENCH_throughput.json", metavar="FILE",
        help="headline report path (default: BENCH_throughput.json)",
    )
    bench.add_argument(
        "--history", default="BENCH_history.jsonl", metavar="FILE",
        help="append-only run history (default: BENCH_history.jsonl)",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.10,
        help="regression gate: fail if a metric drops more than this "
        "fraction below its rolling baseline (default 0.10)",
    )
    bench.add_argument(
        "--no-regression-gate", action="store_true",
        help="measure and record without failing on regressions",
    )
    bench.add_argument(
        "--no-history", action="store_true",
        help="do not append this run to the history file",
    )
    bench.add_argument(
        "--gate-scaling", action="store_true",
        help="fail unless pooled jobs=4 throughput >= jobs=1",
    )
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the simulation service (HTTP/JSON job API)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="bind port (0 picks a free one)")
    serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent jobs (worker threads, default 2)",
    )
    serve.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="simulation processes per job (default 1 = in-thread)",
    )
    serve.add_argument(
        "--result-cache", metavar="DIR",
        help="content-addressed result cache shared by all jobs "
             "(defaults to STATE_DIR/cache when --state-dir is given)",
    )
    serve.add_argument(
        "--state-dir", metavar="DIR",
        help="persist jobs + checkpoints here; enables SIGTERM "
             "checkpoint shutdown and restart resume",
    )
    serve.add_argument(
        "--retries", type=int, default=3,
        help="attempts per cell for transient failures (default 3)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SECONDS",
        help="bound on waiting for jobs at drain shutdown (default: none)",
    )
    serve.add_argument(
        "--fabric-db", metavar="FILE",
        help="durable fabric database: jobs survive crashes and owned "
             "cells run on the lease-based worker fleet",
    )
    serve.add_argument(
        "--fabric-workers", type=int, default=1, metavar="N",
        help="in-process fleet members when --fabric-db is set "
             "(0 = external 'repro work' processes only; default 1)",
    )
    serve.add_argument(
        "--lease", type=float, default=30.0, metavar="SECONDS",
        help="fabric lease duration per cell (default 30)",
    )
    serve.set_defaults(func=cmd_serve)

    work = sub.add_parser(
        "work", help="join a durable fleet: lease and simulate fabric cells"
    )
    work.add_argument("--db", required=True, metavar="FILE",
                      help="the shared fabric database")
    work.add_argument(
        "--cache", metavar="DIR",
        help="shared result cache (the fleet-wide dedup layer)",
    )
    work.add_argument(
        "--worker-id", default=None,
        help="fleet-unique name (default: generated from pid)",
    )
    work.add_argument(
        "--lease", type=float, default=30.0, metavar="SECONDS",
        help="lease duration per claimed cell (default 30)",
    )
    work.add_argument(
        "--poll", type=float, default=0.1, metavar="SECONDS",
        help="idle sleep between empty polls (default 0.1)",
    )
    work.add_argument(
        "--forever", action="store_true",
        help="keep polling after the queue drains (service-fleet mode)",
    )
    work.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="exit after N cells (default: run until drained/stopped)",
    )
    work.set_defaults(func=cmd_work)

    dlq = sub.add_parser(
        "dlq", help="list a fabric database's dead-letter queue"
    )
    dlq.add_argument("--db", required=True, metavar="FILE")
    dlq.add_argument("--json", action="store_true",
                     help="machine-readable listing")
    dlq.set_defaults(func=cmd_dlq)

    chaos = sub.add_parser(
        "chaos",
        help="crash-recovery harness: SIGKILL one of N workers mid-cell, "
             "assert bit-identical results and exactly one reassignment",
    )
    chaos.add_argument(
        "--db", default=None, metavar="FILE",
        help="fabric database to use (default: a fresh temporary one)",
    )
    chaos.add_argument("--workers", type=int, default=3, metavar="N")
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="seeds the victim/kill-point choice (equal seeds, same kill)",
    )
    chaos.add_argument(
        "--no-kill", action="store_true",
        help="control run: same fleet, no victim",
    )
    chaos.add_argument(
        "--lease", type=float, default=3.0, metavar="SECONDS",
        help="fleet lease duration (short, so the orphaned lease expires "
             "quickly; default 3)",
    )
    chaos.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="overall wall-clock bound (default 300)",
    )
    chaos.add_argument(
        "--spec-file", metavar="FILE",
        help="JSON job spec for the sweep (default: a built-in 6-scheme grid)",
    )
    chaos.set_defaults(func=cmd_chaos)

    def add_service_client_args(command) -> None:
        command.add_argument(
            "--server", default="http://127.0.0.1:8642",
            help="service base URL (default http://127.0.0.1:8642)",
        )
        command.add_argument("--timeout", type=float, default=30.0)

    submit = sub.add_parser("submit", help="submit a sweep job to a service")
    add_service_client_args(submit)
    submit.add_argument(
        "--spec-file", metavar="FILE",
        help="JSON job spec to submit verbatim (overrides the options below)",
    )
    submit.add_argument(
        "--schemes", nargs="+",
        default=["dir1nb", "wti", "dir0b", "dragon"], metavar="SCHEME",
    )
    submit.add_argument(
        "--workloads", nargs="+", default=["pops"], metavar="WORKLOAD",
    )
    submit.add_argument(
        "--trace-files", nargs="+", metavar="FILE",
        help="server-side trace file paths to include",
    )
    submit.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--sharer-key", choices=("pid", "cpu"), default="pid")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument(
        "--dedup", action="store_true",
        help="return an existing identical queued/running job instead "
             "of enqueueing a copy",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job is terminal; print the final status",
    )
    submit.add_argument(
        "--stream", action="store_true",
        help="print the NDJSON event stream while the job runs",
    )
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser(
        "status", help="query a running service (stats, or one job)"
    )
    add_service_client_args(status)
    status.add_argument("job_id", nargs="?", default=None)
    status.set_defaults(func=cmd_status)

    return parser


#: Exit codes per error category (see the module docstring).
EXIT_TRACE_FORMAT = 3
EXIT_PROTOCOL = 4
EXIT_CONFIGURATION = 5
EXIT_SERVICE = 6
EXIT_CONFORMANCE = 7
EXIT_REPRO_ERROR = 2


def _report_failure(category: str, exc: ReproError, code: int) -> int:
    print(f"error [{category}]: {exc}", file=sys.stderr)
    return code


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TraceFormatError as exc:
        return _report_failure("trace-format", exc, EXIT_TRACE_FORMAT)
    except InvariantViolation as exc:
        return _report_failure("invariant", exc, EXIT_PROTOCOL)
    except ProtocolError as exc:
        return _report_failure("protocol", exc, EXIT_PROTOCOL)
    except ConfigurationError as exc:
        return _report_failure("configuration", exc, EXIT_CONFIGURATION)
    except ServiceError as exc:
        return _report_failure("service", exc, EXIT_SERVICE)
    except ConformanceError as exc:
        return _report_failure("conformance", exc, EXIT_CONFORMANCE)
    except ReproError as exc:
        return _report_failure("error", exc, EXIT_REPRO_ERROR)
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. head).
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
