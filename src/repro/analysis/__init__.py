"""Analyses behind the paper's tables, figures, and back-of-envelope models."""

from repro.analysis.breakdown import breakdown_table, breakdown_fractions
from repro.analysis.invalidations import (
    InvalidationHistogram,
    invalidation_histogram,
)
from repro.analysis.transactions import transaction_costs
from repro.analysis.sensitivity import (
    OverheadModel,
    overhead_model,
    crossover_q,
)
from repro.analysis.spinlocks import SpinLockImpact, spin_lock_impact
from repro.analysis.scalability import (
    BroadcastCostModel,
    broadcast_cost_model,
    directory_storage_table,
    pointer_sweep,
    wasted_invalidation_rate,
)
from repro.analysis.system import SystemBound, effective_processor_bound
from repro.analysis.bandwidth import BandwidthComparison, bandwidth_comparison
from repro.analysis.contention import (
    BusContentionModel,
    ContentionPoint,
    contention_model,
)
from repro.analysis.scaling import ScalingPoint, by_scheme, run_scaling_study
from repro.analysis.event_costs import EventCost, event_cost_table, verify_decomposition
from repro.analysis.networks import NetworkPoint, network_scaling_study
from repro.analysis.finite import (
    FiniteCacheDecomposition,
    RankingShift,
    capacity_sweep,
    decompose_finite_cost,
    ranking_shift,
    ranking_shifts,
)
from repro.analysis.analytic import (
    MigratoryPrediction,
    ProducerConsumerPrediction,
    ReadOnlyDir1NBPrediction,
)

__all__ = [
    "breakdown_table",
    "breakdown_fractions",
    "InvalidationHistogram",
    "invalidation_histogram",
    "transaction_costs",
    "OverheadModel",
    "overhead_model",
    "crossover_q",
    "SpinLockImpact",
    "spin_lock_impact",
    "BroadcastCostModel",
    "broadcast_cost_model",
    "directory_storage_table",
    "pointer_sweep",
    "wasted_invalidation_rate",
    "SystemBound",
    "effective_processor_bound",
    "BandwidthComparison",
    "bandwidth_comparison",
    "BusContentionModel",
    "ContentionPoint",
    "contention_model",
    "ScalingPoint",
    "by_scheme",
    "run_scaling_study",
    "EventCost",
    "event_cost_table",
    "verify_decomposition",
    "NetworkPoint",
    "network_scaling_study",
    "FiniteCacheDecomposition",
    "RankingShift",
    "capacity_sweep",
    "decompose_finite_cost",
    "ranking_shift",
    "ranking_shifts",
    "MigratoryPrediction",
    "ProducerConsumerPrediction",
    "ReadOnlyDir1NBPrediction",
]
