"""Figure 5: average bus cycles per bus *transaction*.

The bus-cycles-per-reference metric hides how big each scheme's
individual transactions are.  Dividing total cycles by the number of
references that used the bus gives the Figure 5 view: Dragon's
transactions are small single-word updates, Dir1NB's are full block
transfers plus invalidations — which is why fixed per-transaction
overheads (Section 5.1) hurt Dragon relatively more.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.result import SimulationResult
from repro.cost.bus import BusModel


def transaction_costs(
    results: Mapping[str, SimulationResult] | Sequence[SimulationResult],
    bus: BusModel,
) -> dict[str, float]:
    """Scheme -> average bus cycles per bus transaction (Figure 5)."""
    if not isinstance(results, Mapping):
        results = {result.scheme: result for result in results}
    return {
        scheme: result.cycles_per_transaction(bus)
        for scheme, result in results.items()
    }


def transactions_per_reference(
    results: Mapping[str, SimulationResult] | Sequence[SimulationResult],
) -> dict[str, float]:
    """Scheme -> bus transactions per reference (the §5.1 q-slope)."""
    if not isinstance(results, Mapping):
        results = {result.scheme: result for result in results}
    return {
        scheme: result.transactions_per_reference()
        for scheme, result in results.items()
    }
