"""Machine-size scaling study (the paper's stated future work).

The paper's footnote 5: "our data was obtained from a machine with only
four processors. We are trying to obtain traces for a much larger
number of processes and hope to extend our results shortly."  The
synthetic workloads parameterize the process count, so this module runs
that study: hold the workload structure fixed, grow the machine, and
watch how each scheme's cost, invalidation sizes, and broadcast
frequency evolve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.invalidations import invalidation_histogram
from repro.core.result import merge_results
from repro.core.simulator import Simulator
from repro.cost.bus import BusModel
from repro.workloads.registry import make_trace


@dataclass(frozen=True)
class ScalingPoint:
    """One (scheme, machine size) measurement."""

    scheme: str
    num_processes: int
    bus_cycles_per_reference: float
    data_miss_fraction: float
    single_or_none_invalidation_fraction: float
    mean_invalidations: float


def _traces_for(num_processes: int, length: int, workloads: Sequence[str]):
    return [
        make_trace(name, length=length, num_processes=num_processes)
        for name in workloads
    ]


def run_scaling_study(
    bus: BusModel,
    schemes: Sequence[str] = ("dir1nb", "dir0b", "dirnnb", "dragon"),
    process_counts: Sequence[int] = (2, 4, 8, 16),
    length: int = 60_000,
    workloads: Sequence[str] = ("pops", "thor", "pero"),
    simulator: Simulator | None = None,
) -> list[ScalingPoint]:
    """Measure every scheme at every machine size.

    Trace length is held constant, so per-reference quantities stay
    comparable as the machine grows.
    """
    simulator = simulator or Simulator()
    points: list[ScalingPoint] = []
    for num_processes in process_counts:
        traces = _traces_for(num_processes, length, workloads)
        for scheme in schemes:
            merged = merge_results(
                [simulator.run(trace, scheme) for trace in traces]
            )
            histogram = invalidation_histogram(merged)
            points.append(
                ScalingPoint(
                    scheme=scheme,
                    num_processes=num_processes,
                    bus_cycles_per_reference=merged.bus_cycles_per_reference(bus),
                    data_miss_fraction=merged.frequencies().data_miss_fraction,
                    single_or_none_invalidation_fraction=(
                        histogram.single_or_none_fraction
                    ),
                    mean_invalidations=histogram.mean_invalidations,
                )
            )
    return points


def by_scheme(points: Sequence[ScalingPoint]) -> dict[str, list[ScalingPoint]]:
    """Group scaling points per scheme, ordered by machine size."""
    grouped: dict[str, list[ScalingPoint]] = {}
    for point in points:
        grouped.setdefault(point.scheme, []).append(point)
    for series in grouped.values():
        series.sort(key=lambda point: point.num_processes)
    return grouped
