"""Finite-cache cost decomposition (the paper's §4 first-order estimate).

The paper simulates infinite caches and argues that "the performance of
a system with smaller caches can be estimated to first order by adding
the costs due to the finite cache size".  With the finite-cache
extension both quantities can be *measured*, so this module decomposes
a finite-cache run into:

* the **coherence component** — the infinite-cache cost of the same
  trace and scheme (what the paper reports), and
* the **capacity component** — the additional cycles caused by
  replacement misses and victim write-backs.

It also quantifies what the paper could not: whether finite capacity
*reorders* the schemes.  :func:`ranking_shift` ranks every scheme under
the infinite model and under one finite geometry and reports which
schemes change places — the question a sweep over
:class:`~repro.memory.geometry.CacheGeometry` cells answers per
capacity point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.simulator import Simulator
from repro.cost.bus import BusModel
from repro.memory.geometry import CacheGeometry, parse_geometry
from repro.trace.stream import Trace


@dataclass(frozen=True)
class FiniteCacheDecomposition:
    """Measured cost split for one (trace, scheme, cache geometry)."""

    scheme: str
    trace_name: str
    infinite_cost: float
    finite_cost: float
    geometry: str | None = None

    @property
    def capacity_component(self) -> float:
        """Extra cycles/reference attributable to finite capacity."""
        return max(0.0, self.finite_cost - self.infinite_cost)

    @property
    def capacity_share(self) -> float:
        """Capacity misses' share of the finite-cache total."""
        if self.finite_cost == 0:
            return 0.0
        return self.capacity_component / self.finite_cost


def decompose_finite_cost(
    trace: Trace,
    scheme: str,
    bus: BusModel,
    cache_factory: Callable | None = None,
    simulator: Simulator | None = None,
    geometry: Any | None = None,
) -> FiniteCacheDecomposition:
    """Measure the coherence/capacity split for one configuration.

    Args:
        trace: the input trace.
        scheme: protocol registry name.
        bus: cost model to price both runs under.
        cache_factory: zero-argument factory for the finite caches
            (e.g. ``lambda: FiniteCache(256, 2)``); superseded by
            *geometry* when both are given.
        geometry: any :func:`~repro.memory.geometry.parse_geometry`
            spelling — the first-class way to pick the finite shape
            (engages the capacity-aware kernels and result caching).
    """
    simulator = simulator or Simulator()
    infinite = simulator.run(trace, scheme)
    canonical: str | None = None
    if geometry is not None:
        canonical = parse_geometry(geometry).canonical()
        finite = simulator.run(trace, scheme, geometry=canonical)
    elif cache_factory is not None:
        finite = simulator.run(trace, scheme, cache_factory=cache_factory)
    else:
        raise TypeError("decompose_finite_cost needs geometry or cache_factory")
    return FiniteCacheDecomposition(
        scheme=scheme,
        trace_name=trace.name,
        infinite_cost=infinite.bus_cycles_per_reference(bus),
        finite_cost=finite.bus_cycles_per_reference(bus),
        geometry=canonical,
    )


def capacity_sweep(
    trace: Trace,
    scheme: str,
    bus: BusModel,
    geometries: Sequence[Any],
    simulator: Simulator | None = None,
) -> list[tuple[CacheGeometry, FiniteCacheDecomposition]]:
    """Decompose costs across cache geometries.

    Each entry of *geometries* is any
    :func:`~repro.memory.geometry.parse_geometry` spelling — a
    :class:`CacheGeometry`, a ``"LINESxASSOC"`` string, a
    ``(lines, assoc)`` pair (the historic ``(num_sets, assoc)`` call
    sites parse identically when associativity is 1; pass total lines).
    """
    results = []
    for spec in geometries:
        geometry = parse_geometry(spec)
        decomposition = decompose_finite_cost(
            trace, scheme, bus, geometry=geometry, simulator=simulator
        )
        results.append((geometry, decomposition))
    return results


@dataclass(frozen=True)
class RankingShift:
    """Scheme ordering under the infinite model vs one finite geometry.

    Orders are best-first (fewest bus cycles per reference).  A shift
    means the paper's infinite-cache conclusions would not survive this
    capacity point unchanged.
    """

    trace_name: str
    geometry: CacheGeometry
    infinite_costs: dict[str, float] = field(compare=False)
    finite_costs: dict[str, float] = field(compare=False)

    @property
    def infinite_order(self) -> tuple[str, ...]:
        """Schemes best-first under infinite caches."""
        return tuple(sorted(self.infinite_costs, key=self.infinite_costs.get))

    @property
    def finite_order(self) -> tuple[str, ...]:
        """Schemes best-first under this finite geometry."""
        return tuple(sorted(self.finite_costs, key=self.finite_costs.get))

    @property
    def shifted(self) -> bool:
        """True when finite capacity reorders any schemes."""
        return self.infinite_order != self.finite_order

    @property
    def displaced(self) -> tuple[str, ...]:
        """Schemes whose rank position changes, in finite-order."""
        infinite = self.infinite_order
        return tuple(
            scheme
            for position, scheme in enumerate(self.finite_order)
            if infinite[position] != scheme
        )


def ranking_shift(
    trace: Trace,
    schemes: Sequence[str],
    bus: BusModel,
    geometry: Any,
    simulator: Simulator | None = None,
) -> RankingShift:
    """Rank *schemes* under infinite caches and under *geometry*."""
    simulator = simulator or Simulator()
    parsed = parse_geometry(geometry)
    infinite_costs: dict[str, float] = {}
    finite_costs: dict[str, float] = {}
    for scheme in schemes:
        infinite = simulator.run(trace, scheme)
        finite = simulator.run(trace, scheme, geometry=parsed.canonical())
        infinite_costs[scheme] = infinite.bus_cycles_per_reference(bus)
        finite_costs[scheme] = finite.bus_cycles_per_reference(bus)
    return RankingShift(
        trace_name=trace.name,
        geometry=parsed,
        infinite_costs=infinite_costs,
        finite_costs=finite_costs,
    )


def ranking_shifts(
    trace: Trace,
    schemes: Sequence[str],
    bus: BusModel,
    geometries: Sequence[Any],
    simulator: Simulator | None = None,
) -> list[RankingShift]:
    """:func:`ranking_shift` across a capacity sweep, one per geometry."""
    simulator = simulator or Simulator()
    return [
        ranking_shift(trace, schemes, bus, geometry, simulator=simulator)
        for geometry in geometries
    ]
