"""Finite-cache cost decomposition (the paper's §4 first-order estimate).

The paper simulates infinite caches and argues that "the performance of
a system with smaller caches can be estimated to first order by adding
the costs due to the finite cache size".  With the finite-cache
extension both quantities can be *measured*, so this module decomposes
a finite-cache run into:

* the **coherence component** — the infinite-cache cost of the same
  trace and scheme (what the paper reports), and
* the **capacity component** — the additional cycles caused by
  replacement misses and victim write-backs.

It also evaluates the quality of the paper's first-order additivity
assumption: how close is (infinite cost + capacity delta measured on a
*coherence-free* baseline) to the true finite-cache cost?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.simulator import Simulator
from repro.cost.bus import BusModel
from repro.trace.stream import Trace


@dataclass(frozen=True)
class FiniteCacheDecomposition:
    """Measured cost split for one (trace, scheme, cache geometry)."""

    scheme: str
    trace_name: str
    infinite_cost: float
    finite_cost: float

    @property
    def capacity_component(self) -> float:
        """Extra cycles/reference attributable to finite capacity."""
        return max(0.0, self.finite_cost - self.infinite_cost)

    @property
    def capacity_share(self) -> float:
        """Capacity misses' share of the finite-cache total."""
        if self.finite_cost == 0:
            return 0.0
        return self.capacity_component / self.finite_cost


def decompose_finite_cost(
    trace: Trace,
    scheme: str,
    bus: BusModel,
    cache_factory: Callable,
    simulator: Simulator | None = None,
) -> FiniteCacheDecomposition:
    """Measure the coherence/capacity split for one configuration.

    Args:
        trace: the input trace.
        scheme: protocol registry name.
        bus: cost model to price both runs under.
        cache_factory: zero-argument factory for the finite caches
            (e.g. ``lambda: FiniteCache(256, 2)``).
    """
    simulator = simulator or Simulator()
    infinite = simulator.run(trace, scheme)
    finite = simulator.run(trace, scheme, cache_factory=cache_factory)
    return FiniteCacheDecomposition(
        scheme=scheme,
        trace_name=trace.name,
        infinite_cost=infinite.bus_cycles_per_reference(bus),
        finite_cost=finite.bus_cycles_per_reference(bus),
    )


def capacity_sweep(
    trace: Trace,
    scheme: str,
    bus: BusModel,
    geometries: list[tuple[int, int]],
    simulator: Simulator | None = None,
) -> list[tuple[tuple[int, int], FiniteCacheDecomposition]]:
    """Decompose costs across cache geometries ((num_sets, assoc) pairs)."""
    from repro.memory.cache import FiniteCache

    results = []
    for num_sets, associativity in geometries:
        decomposition = decompose_finite_cost(
            trace,
            scheme,
            bus,
            cache_factory=lambda: FiniteCache(num_sets, associativity),
            simulator=simulator,
        )
        results.append(((num_sets, associativity), decomposition))
    return results
