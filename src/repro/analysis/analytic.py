"""Closed-form coherence-cost models, cross-validated against simulation.

Section 4 positions trace-driven simulation against prior work that
"used analytical models [14,9]" whose results "are highly dependent on
the assumptions made".  For *regular* sharing patterns the assumptions
can be made exact, which gives strong cross-validation targets: these
models predict event rates and bus cycles for the microbenchmarks of
:mod:`repro.workloads.micro` in closed form, and the test suite checks
the simulator reproduces them.

All models express costs per **data reference** (instruction fetches
carry no coherence cost, so the per-total-reference value is just
``(1 - instr_fraction)`` times these).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.bus import BusModel


@dataclass(frozen=True)
class MigratoryPrediction:
    """Steady-state prediction for the migratory microbenchmark.

    One block visits processes round-robin; each visit makes
    ``visit_refs`` data references as alternating read/write pairs.
    In steady state under the multiple-clean/single-dirty model each
    visit costs exactly one dirty fetch (the previous owner flushes)
    and one clean-write upgrade; everything else hits.
    """

    visit_refs: int

    def __post_init__(self) -> None:
        if self.visit_refs < 2 or self.visit_refs % 2:
            raise ValueError("visit_refs must be an even count >= 2")

    @property
    def rm_blk_drty_per_data_ref(self) -> float:
        """Predicted dirty read misses per data reference."""
        return 1.0 / self.visit_refs

    @property
    def wh_blk_cln_per_data_ref(self) -> float:
        """Predicted clean write hits per data reference."""
        return 1.0 / self.visit_refs

    def dir0b_cycles_per_data_ref(self, bus: BusModel) -> float:
        """Dir0B: flush (write-back) + directory probe + broadcast."""
        per_visit = bus.write_back + bus.dir_check + bus.broadcast_cost
        return per_visit / self.visit_refs

    def dirnnb_cycles_per_data_ref(self, bus: BusModel) -> float:
        """DirnNB: flush + directory probe + one directed invalidation."""
        per_visit = bus.write_back + bus.dir_check + bus.invalidate
        return per_visit / self.visit_refs

    def dragon_cycles_per_data_ref(self, bus: BusModel) -> float:
        """Dragon: every write updates the other (permanent) copies."""
        writes_per_visit = self.visit_refs / 2
        return writes_per_visit * bus.write_word / self.visit_refs


@dataclass(frozen=True)
class ProducerConsumerPrediction:
    """Steady-state prediction for the producer/consumer microbenchmark.

    One producer writes a slot; each of ``consumers`` other processes
    reads it ``reads_per_consumer`` times before the next write.  Per
    slot cycle: the producer's write upgrades a clean copy shared by
    all consumers (directory probe + broadcast under Dir0B, or
    ``consumers`` directed messages under DirnNB); the first consumer's
    re-read flushes the dirty block; the remaining consumers fetch from
    (now-current) memory; repeat reads hit.
    """

    consumers: int
    reads_per_consumer: int

    def __post_init__(self) -> None:
        if self.consumers < 1 or self.reads_per_consumer < 1:
            raise ValueError("consumers and reads_per_consumer must be >= 1")

    @property
    def refs_per_cycle(self) -> int:
        """Data references per produced-slot cycle."""
        return 1 + self.consumers * self.reads_per_consumer

    def dir0b_cycles_per_data_ref(self, bus: BusModel) -> float:
        """Predicted Dir0B cycles per data reference."""
        per_cycle = (
            bus.dir_check
            + bus.broadcast_cost
            + bus.write_back
            + (self.consumers - 1) * bus.mem_access
        )
        return per_cycle / self.refs_per_cycle

    def dirnnb_cycles_per_data_ref(self, bus: BusModel) -> float:
        """Predicted DirnNB cycles per data reference."""
        per_cycle = (
            bus.dir_check
            + self.consumers * bus.invalidate
            + bus.write_back
            + (self.consumers - 1) * bus.mem_access
        )
        return per_cycle / self.refs_per_cycle

    def dragon_cycles_per_data_ref(self, bus: BusModel) -> float:
        """One word update per produced slot; every read hits."""
        return bus.write_word / self.refs_per_cycle


@dataclass(frozen=True)
class ReadOnlyDir1NBPrediction:
    """Dir1NB on a read-only shared table: the bouncing model.

    With ``processes`` uniform random readers, a read to a given block
    misses whenever another process touched that block more recently —
    probability ``(processes - 1) / processes`` in the uniform limit.
    Every such miss costs an invalidation of the holder plus a memory
    fetch.
    """

    processes: int

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ValueError("processes must be >= 1")

    @property
    def miss_probability(self) -> float:
        """Probability a read misses under the bouncing model."""
        return (self.processes - 1) / self.processes

    def cycles_per_data_ref(self, bus: BusModel) -> float:
        """Predicted cycles per data reference."""
        per_miss = bus.invalidate + bus.mem_access
        return self.miss_probability * per_miss
