"""Section 5's closing back-of-envelope: how many processors can a bus feed?

Given a scheme's bus cycles per reference, a processor issue rate, a
data-reference rate per instruction, and a bus cycle time, the bus
saturates at ``1 / (bus_cycles_per_ref * refs_per_second * cycle_time)``
processors.  The paper's example: the best scheme uses ~0.03 bus
cycles/reference, so a 10-MIPS processor making one data reference per
instruction uses a bus cycle every 1500 ns, and a 100 ns bus supports
at most ~15 effective processors — an optimistic upper bound (no
instruction misses, infinite caches, no contention).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemBound:
    """Shared-bus saturation estimate for one scheme."""

    scheme: str
    bus_cycles_per_reference: float
    mips: float
    data_refs_per_instruction: float
    bus_cycle_ns: float

    def __post_init__(self) -> None:
        if self.mips <= 0 or self.bus_cycle_ns <= 0:
            raise ValueError("mips and bus_cycle_ns must be positive")
        if self.data_refs_per_instruction <= 0:
            raise ValueError("data_refs_per_instruction must be positive")
        if self.bus_cycles_per_reference < 0:
            raise ValueError("bus_cycles_per_reference must be non-negative")

    @property
    def references_per_second(self) -> float:
        """Memory references issued per second by one processor.

        Counts instruction fetches plus data references, matching the
        per-reference cost metric's denominator.
        """
        return self.mips * 1e6 * (1.0 + self.data_refs_per_instruction)

    @property
    def ns_between_bus_cycles(self) -> float:
        """Average time between bus cycles demanded by one processor."""
        demand = self.bus_cycles_per_reference * self.references_per_second
        if demand == 0:
            return float("inf")
        return 1e9 / demand

    @property
    def max_processors(self) -> float:
        """Processors at which the bus saturates (optimistic bound)."""
        return self.ns_between_bus_cycles / self.bus_cycle_ns


def effective_processor_bound(
    scheme: str,
    bus_cycles_per_reference: float,
    mips: float = 10.0,
    data_refs_per_instruction: float = 1.0,
    bus_cycle_ns: float = 100.0,
) -> SystemBound:
    """The paper's 15-processor estimate, parameterized."""
    return SystemBound(
        scheme=scheme,
        bus_cycles_per_reference=bus_cycles_per_reference,
        mips=mips,
        data_refs_per_instruction=data_refs_per_instruction,
        bus_cycle_ns=bus_cycle_ns,
    )
