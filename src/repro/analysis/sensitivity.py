"""Section 5.1: sensitivity to fixed per-transaction overhead.

Every bus transaction carries at least one extra cycle of cache access,
bus-controller propagation, and arbitration beyond the cycles the cost
model charges.  Adding *q* cycles per transaction turns each scheme's
cost into a line ``base + slope * q`` whose slope is its transactions
per reference.  The paper's observation: Dragon's slope is almost twice
Dir0B's, so at q = 1 Dir0B needs only ~12% more bus cycles than Dragon
versus ~46% at q = 0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import SimulationResult
from repro.cost.bus import BusModel


@dataclass(frozen=True)
class OverheadModel:
    """The cost line ``cycles(q) = base + slope * q`` for one scheme."""

    scheme: str
    base: float
    slope: float

    def cycles(self, q: float) -> float:
        """Bus cycles per reference with *q* overhead cycles/transaction."""
        if q < 0:
            raise ValueError(f"q must be non-negative, got {q}")
        return self.base + self.slope * q

    def relative_excess(self, other: "OverheadModel", q: float) -> float:
        """How much more expensive self is than *other* at overhead *q*.

        Returns e.g. 0.12 for "12% more bus cycles".
        """
        ours, theirs = self.cycles(q), other.cycles(q)
        if theirs == 0:
            return float("inf") if ours > 0 else 0.0
        return ours / theirs - 1.0


def overhead_model(result: SimulationResult, bus: BusModel) -> OverheadModel:
    """Fit the (exact) overhead line for one scheme under one bus."""
    return OverheadModel(
        scheme=result.scheme,
        base=result.bus_cycles_per_reference(bus),
        slope=result.transactions_per_reference(),
    )


def crossover_q(model_a: OverheadModel, model_b: OverheadModel) -> float | None:
    """Overhead q at which the two schemes' cost lines cross.

    Returns None when the lines are parallel or cross at negative q
    (i.e. one scheme wins for every physical overhead).
    """
    slope_delta = model_a.slope - model_b.slope
    if slope_delta == 0:
        return None
    q = (model_b.base - model_a.base) / slope_delta
    return q if q >= 0 else None
