"""Directory vs. memory bandwidth (the paper's "not a bottleneck" claim).

Section 5 argues that "the required directory bandwidth is only
slightly higher than the bandwidth to memory", so the directory can be
scaled exactly the way memory is — by distributing it with the
processors.  This module counts, from a simulation result, how many
accesses per reference each structure must serve:

* the **directory** is consulted on every miss (overlapped or not) and
  on every clean-block write hit;
* **memory** serves block fetches and receives write-backs and
  write-throughs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import SimulationResult
from repro.protocols.events import OpKind

_DIRECTORY_OPS = (
    OpKind.DIR_CHECK,
    OpKind.DIR_CHECK_OVERLAPPED,
    OpKind.SINGLE_BIT_UPDATE,
)
_MEMORY_OPS = (OpKind.MEM_ACCESS, OpKind.WRITE_BACK, OpKind.WRITE_WORD)


@dataclass(frozen=True)
class BandwidthComparison:
    """Accesses per memory reference demanded of directory and memory."""

    scheme: str
    directory_accesses_per_ref: float
    memory_accesses_per_ref: float

    @property
    def ratio(self) -> float:
        """Directory demand relative to memory demand.

        The paper's claim is that this is close to (and only slightly
        above) 1 for directory schemes — ``inf`` if a scheme never
        touches memory, 0 if it has no directory.
        """
        if self.memory_accesses_per_ref == 0:
            return float("inf") if self.directory_accesses_per_ref > 0 else 0.0
        return self.directory_accesses_per_ref / self.memory_accesses_per_ref


def _ops_per_ref(result: SimulationResult, kinds) -> float:
    if result.total_refs == 0:
        return 0.0
    units = result.all_op_units()
    return sum(units.get(kind, 0) for kind in kinds) / result.total_refs


def bandwidth_comparison(result: SimulationResult) -> BandwidthComparison:
    """Compare directory and memory access demand for one scheme."""
    return BandwidthComparison(
        scheme=result.scheme,
        directory_accesses_per_ref=_ops_per_ref(result, _DIRECTORY_OPS),
        memory_accesses_per_ref=_ops_per_ref(result, _MEMORY_OPS),
    )
