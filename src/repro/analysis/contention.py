"""Bus contention: the correction the paper leaves out of its §5 bound.

The paper's shared-bus estimate ("a maximum performance of 15 effective
processors") is explicitly "an optimistic upper bound because we have
not included ... the effects of bus contention".  This module supplies
that correction with the standard closed queueing model of a shared
bus: N processors each alternate *compute* (mean think time Z between
bus transactions) and *bus service* (mean time S per transaction), and
the bus serves one transaction at a time.

Exact Mean Value Analysis (MVA) for the single-server closed network
gives the throughput at every population N; *effective processors* is
throughput relative to one uncontended processor, which approaches the
paper's linear bound ``1/demand`` asymptotically but bends well below
it as soon as queueing sets in.

Inputs come straight from a simulation result: transactions per
reference and cycles per transaction, plus the same machine parameters
the paper uses (MIPS, data references per instruction, bus cycle time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import SimulationResult
from repro.cost.bus import BusModel


@dataclass(frozen=True)
class ContentionPoint:
    """Model output at one machine size."""

    processors: int
    effective_processors: float
    bus_utilization: float
    slowdown_per_processor: float

    @property
    def efficiency(self) -> float:
        """Effective processors per physical processor."""
        if self.processors == 0:
            return 0.0
        return self.effective_processors / self.processors


@dataclass(frozen=True)
class BusContentionModel:
    """A closed machine-repairman model of one scheme on a shared bus.

    Attributes:
        scheme: protocol name.
        think_time: mean compute time between bus transactions (seconds).
        service_time: mean bus time per transaction (seconds).
    """

    scheme: str
    think_time: float
    service_time: float

    def __post_init__(self) -> None:
        if self.think_time < 0 or self.service_time < 0:
            raise ValueError("times must be non-negative")

    @property
    def demand(self) -> float:
        """Fraction of one processor's time the bus would be busy for it."""
        total = self.think_time + self.service_time
        if total == 0:
            return 0.0
        return self.service_time / total

    @property
    def saturation_processors(self) -> float:
        """The paper's linear bound: 1/demand (infinite if bus-free)."""
        if self.demand == 0:
            return float("inf")
        return 1.0 / self.demand

    def evaluate(self, processors: int) -> ContentionPoint:
        """Exact MVA for the closed single-server queue at population N."""
        if processors < 0:
            raise ValueError("processors must be non-negative")
        if processors == 0:
            return ContentionPoint(0, 0.0, 0.0, 1.0)
        if self.service_time == 0:
            return ContentionPoint(processors, float(processors), 0.0, 1.0)

        queue_length = 0.0
        throughput = 0.0
        for population in range(1, processors + 1):
            response = self.service_time * (1.0 + queue_length)
            throughput = population / (self.think_time + response)
            queue_length = throughput * response

        uncontended = 1.0 / (self.think_time + self.service_time)
        effective = throughput / uncontended
        utilization = min(1.0, throughput * self.service_time)
        slowdown = processors / effective if effective > 0 else float("inf")
        return ContentionPoint(processors, effective, utilization, slowdown)

    def curve(self, max_processors: int) -> list[ContentionPoint]:
        """Evaluate every machine size from 1 to *max_processors*."""
        return [self.evaluate(n) for n in range(1, max_processors + 1)]


def contention_model(
    result: SimulationResult,
    bus: BusModel,
    mips: float = 10.0,
    data_refs_per_instruction: float = 1.0,
    bus_cycle_ns: float = 100.0,
) -> BusContentionModel:
    """Build the contention model from a simulation result.

    Think time is the mean compute time between bus transactions; one
    reference takes ``1 / (mips * (1 + data_refs_per_instruction))``
    microseconds-scale time, and a transaction occurs every
    ``1/transactions_per_reference`` references.
    """
    if mips <= 0 or bus_cycle_ns <= 0:
        raise ValueError("mips and bus_cycle_ns must be positive")
    transactions = result.transactions_per_reference()
    refs_per_second = mips * 1e6 * (1.0 + data_refs_per_instruction)
    service = result.cycles_per_transaction(bus) * bus_cycle_ns * 1e-9
    if transactions == 0:
        return BusContentionModel(result.scheme, think_time=1.0, service_time=0.0)
    seconds_per_transaction = 1.0 / (transactions * refs_per_second)
    think = max(0.0, seconds_per_transaction - service)
    return BusContentionModel(
        result.scheme, think_time=think, service_time=service
    )
