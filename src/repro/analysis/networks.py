"""Directory schemes over interconnection networks (the paper's thesis).

"Directory schemes for cache coherence are potentially attractive in
large multiprocessor systems that are beyond the scaling limits of the
snoopy cache schemes" — because their coherence messages are directed.
This analysis makes the claim quantitative: price each scheme's
measured operations on point-to-point topologies at growing machine
sizes.  Snoopy schemes are *unpriceable* there (they rely on observing
every transaction); among directory schemes, the ones that never
broadcast scale gracefully while broadcast fallbacks pay an O(n)
emulation penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.result import merge_results
from repro.core.simulator import Simulator
from repro.cost.network import NetworkModel, Topology, network_cycles_per_reference
from repro.workloads.registry import make_trace


@dataclass(frozen=True)
class NetworkPoint:
    """One (scheme, topology, machine size) measurement."""

    scheme: str
    topology: Topology
    num_nodes: int
    cycles_per_reference: float | None
    """None when the scheme cannot run on this topology (snoopy)."""

    @property
    def hosted(self) -> bool:
        """True when the scheme can run on this topology."""
        return self.cycles_per_reference is not None


def network_scaling_study(
    schemes: Sequence[str] = ("dirnnb", "dir0b", "dir1b", "coarse-vector", "dragon"),
    topologies: Sequence[Topology] = (
        Topology.BUS,
        Topology.MESH_2D,
        Topology.HYPERCUBE,
    ),
    node_counts: Sequence[int] = (4, 16),
    length: int = 40_000,
    workloads: Sequence[str] = ("pops", "thor", "pero"),
    simulator: Simulator | None = None,
) -> list[NetworkPoint]:
    """Price every scheme on every topology at every machine size.

    Node counts must satisfy each topology's shape constraints (square
    for the mesh, power of two for the hypercube) — the defaults do.
    """
    simulator = simulator or Simulator()
    points: list[NetworkPoint] = []
    for num_nodes in node_counts:
        traces = [
            make_trace(name, length=length, num_processes=num_nodes)
            for name in workloads
        ]
        results = {
            scheme: merge_results([simulator.run(t, scheme) for t in traces])
            for scheme in schemes
        }
        for topology in topologies:
            network = NetworkModel(topology, num_nodes)
            for scheme, result in results.items():
                try:
                    cycles = network_cycles_per_reference(result, network)
                except ValueError:
                    cycles = None
                points.append(
                    NetworkPoint(
                        scheme=scheme,
                        topology=topology,
                        num_nodes=num_nodes,
                        cycles_per_reference=cycles,
                    )
                )
    return points
