"""Per-event average bus-cycle costs (the paper's §4.1 worked example).

Section 4.1 explains the methodology with "a cache miss event might
require 5 bus cycles of communication cost".  This module recovers that
per-event cost view from a simulation result: for each Table-4 event
type, the average cycles one occurrence costs under a given bus model,
plus its contribution to the total (frequency × cost) — the exact
decomposition the paper multiplies out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import SimulationResult
from repro.cost.accounting import charge_ops
from repro.cost.bus import BusModel
from repro.protocols.events import EventType


@dataclass(frozen=True)
class EventCost:
    """Cost profile of one event type under one bus model."""

    event: EventType
    frequency: float
    """Occurrences per memory reference."""
    cycles_per_occurrence: float
    """Average bus cycles one occurrence costs."""

    @property
    def cycles_per_reference(self) -> float:
        """This event's contribution to the paper's headline metric."""
        return self.frequency * self.cycles_per_occurrence


def event_cost_table(
    result: SimulationResult, bus: BusModel
) -> dict[EventType, EventCost]:
    """Per-event frequencies and average costs for one scheme.

    Only events that occurred appear; free events (hits, first
    references in most schemes) show zero cycles per occurrence.
    """
    if result.total_refs == 0:
        return {}
    table: dict[EventType, EventCost] = {}
    for event, count in result.event_counts.items():
        units = result.op_units.get(event)
        cycles = charge_ops(units, bus).total if units else 0.0
        table[event] = EventCost(
            event=event,
            frequency=count / result.total_refs,
            cycles_per_occurrence=cycles / count if count else 0.0,
        )
    return table


def verify_decomposition(result: SimulationResult, bus: BusModel) -> float:
    """Sum of per-event contributions; equals the headline metric."""
    return sum(
        cost.cycles_per_reference for cost in event_cost_table(result, bus).values()
    )
