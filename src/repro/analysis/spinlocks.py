"""Section 5.2: impact of spin locks on coherence performance.

The paper re-runs its simulations with the lock-test reads removed from
the traces and finds Dir1NB improves from 0.32 to 0.12 bus cycles per
reference (spins bounce lock blocks between caches under a single-copy
scheme) while Dir0B is essentially unchanged (spins hit in the cache).
:func:`spin_lock_impact` reproduces the experiment for any scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.result import merge_results
from repro.core.simulator import Simulator
from repro.cost.bus import BusModel
from repro.trace.filters import exclude_lock_spins
from repro.trace.stream import Trace


@dataclass(frozen=True)
class SpinLockImpact:
    """Before/after cost of one scheme when lock spins are excluded."""

    scheme: str
    with_spins: float
    without_spins: float

    @property
    def absolute_drop(self) -> float:
        """Cost removed by excluding spins (cycles/reference)."""
        return self.with_spins - self.without_spins

    @property
    def relative_drop(self) -> float:
        """Fraction of the cost attributable to spin reads."""
        if self.with_spins == 0:
            return 0.0
        return self.absolute_drop / self.with_spins


def strip_spins(trace: Trace) -> Trace:
    """A copy of *trace* without the spin-lock test reads."""
    return Trace(
        name=trace.name,
        records=list(exclude_lock_spins(trace.records)),
        description=f"{trace.description} (lock spins excluded)",
    )


def spin_lock_impact(
    traces: Sequence[Trace],
    scheme: str,
    bus: BusModel,
    simulator: Simulator | None = None,
) -> SpinLockImpact:
    """Run the Section 5.2 experiment for *scheme* over *traces*."""
    simulator = simulator or Simulator()
    with_spins = merge_results(
        [simulator.run(trace, scheme) for trace in traces]
    ).bus_cycles_per_reference(bus)
    without_spins = merge_results(
        [simulator.run(strip_spins(trace), scheme) for trace in traces]
    ).bus_cycles_per_reference(bus)
    return SpinLockImpact(
        scheme=scheme, with_spins=with_spins, without_spins=without_spins
    )
