"""Section 6: directory scheme alternatives for scalability.

Four analyses:

* :func:`broadcast_cost_model` — the paper's ``Dir1B`` linear model:
  with one pointer plus a broadcast bit, cost(b) = base + rate * b
  where *b* is the cycles a broadcast invalidate takes (the paper
  reports 0.0485 + 0.0006·b for its traces).  The model is exact for
  our simulator because broadcast cycles enter the total linearly.
* :func:`pointer_sweep` — DiriB vs DiriNB across pointer counts i,
  measuring cost and (for NB) the pointer-eviction-induced extra
  misses the paper predicts ("trades off a slightly increased miss
  rate for avoiding broadcasts altogether").
* :func:`wasted_invalidation_rate` — the coarse-vector coding's cost
  in useless invalidation messages.
* :func:`directory_storage_table` — bits/block of each organization as
  the machine scales (full map n+1, limited pointers i·log n, coarse
  vector 2·log n, two-bit constant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.classification import DirClass
from repro.core.result import SimulationResult, merge_results
from repro.core.simulator import Simulator
from repro.cost.bus import BusModel
from repro.memory.directory import directory_bits_per_block
from repro.protocols.events import OpKind
from repro.trace.stream import Trace


@dataclass(frozen=True)
class BroadcastCostModel:
    """cost(b) = base + rate * b for a broadcast-bit directory scheme.

    ``base`` is the cost with free broadcasts; ``rate`` is broadcast
    invalidations per reference (the paper's 0.0006 for Dir1B).
    """

    scheme: str
    base: float
    rate: float

    def cycles(self, broadcast_cost: float) -> float:
        """Predicted bus cycles per reference at the given cost."""
        if broadcast_cost < 0:
            raise ValueError("broadcast_cost must be non-negative")
        return self.base + self.rate * broadcast_cost


def broadcast_cost_model(result: SimulationResult, bus: BusModel) -> BroadcastCostModel:
    """Extract the exact linear broadcast-cost model from a simulation."""
    base = result.bus_cycles_per_reference(bus.with_broadcast_cost(0.0))
    broadcasts = sum(
        units.get(OpKind.BROADCAST_INVALIDATE, 0)
        for units in result.op_units.values()
    )
    rate = broadcasts / result.total_refs if result.total_refs else 0.0
    return BroadcastCostModel(scheme=result.scheme, base=base, rate=rate)


@dataclass(frozen=True)
class PointerSweepPoint:
    """One (i, variant) point of the Section 6 limited-pointer sweep."""

    pointers: int
    broadcast: bool
    bus_cycles_per_reference: float
    data_miss_fraction: float
    pointer_evictions_per_reference: float
    broadcasts_per_reference: float
    directory_bits_per_block: int

    @property
    def label(self) -> str:
        """The paper's Dir_iX notation for this point."""
        return DirClass(self.pointers, self.broadcast).label


def pointer_sweep(
    traces: Sequence[Trace],
    bus: BusModel,
    pointer_counts: Sequence[int] = (1, 2, 3, 4),
    num_caches: int | None = None,
    simulator: Simulator | None = None,
) -> list[PointerSweepPoint]:
    """Evaluate DiriB and DiriNB for each i in *pointer_counts*."""
    simulator = simulator or Simulator()
    points: list[PointerSweepPoint] = []
    for pointers in pointer_counts:
        for broadcast in (True, False):
            scheme = "dirib" if broadcast else "dirinb"
            results = [
                simulator.run(
                    trace, scheme, num_caches=num_caches, num_pointers=pointers
                )
                for trace in traces
            ]
            merged = merge_results(results)
            broadcasts = sum(
                units.get(OpKind.BROADCAST_INVALIDATE, 0)
                for units in merged.op_units.values()
            )
            caches = num_caches or max(len(trace.pids) for trace in traces)
            points.append(
                PointerSweepPoint(
                    pointers=pointers,
                    broadcast=broadcast,
                    bus_cycles_per_reference=merged.bus_cycles_per_reference(bus),
                    data_miss_fraction=merged.frequencies().data_miss_fraction,
                    pointer_evictions_per_reference=(
                        merged.pointer_evictions / merged.total_refs
                    ),
                    broadcasts_per_reference=broadcasts / merged.total_refs,
                    directory_bits_per_block=directory_bits_per_block(
                        "limited-b" if broadcast else "limited-nb",
                        caches,
                        pointers,
                    ),
                )
            )
    return points


def wasted_invalidation_rate(result: SimulationResult) -> float:
    """Useless invalidation messages per reference (coarse vector)."""
    if result.total_refs == 0:
        return 0.0
    return result.wasted_invalidations / result.total_refs


def storage_overhead_fraction(
    organization: str, num_caches: int, num_pointers: int = 1, block_bytes: int = 16
) -> float:
    """Directory storage as a fraction of the memory it describes (§6).

    A full map at 1024 caches costs 1025 bits for every 128-bit block --
    8x the memory itself -- while the coarse vector stays under 17%.
    """
    bits = directory_bits_per_block(organization, num_caches, num_pointers)
    return bits / (8 * block_bytes)


def directory_storage_table(
    cache_counts: Sequence[int] = (4, 16, 64, 256, 1024),
    pointer_counts: Sequence[int] = (1, 2, 4),
) -> dict[int, dict[str, int]]:
    """Bits of directory storage per memory block as the machine grows.

    Rows are cache counts; columns are organizations: ``two-bit``,
    ``dir<i>b`` per pointer count, ``coarse-vector``, ``full-map``.
    """
    table: dict[int, dict[str, int]] = {}
    for caches in cache_counts:
        row: dict[str, int] = {
            "two-bit": directory_bits_per_block("two-bit", caches),
        }
        for pointers in pointer_counts:
            row[f"dir{pointers}b"] = directory_bits_per_block(
                "limited-b", caches, pointers
            )
        row["coarse-vector"] = directory_bits_per_block("coarse-vector", caches)
        row["full-map"] = directory_bits_per_block("full-map", caches)
        table[caches] = row
    return table
