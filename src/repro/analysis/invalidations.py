"""Figure 1: the clean-block write invalidation histogram.

For every write to a previously-clean block (events ``wh-blk-cln`` and
``wm-blk-cln``), the simulator records how many *other* caches held the
block — the number of caches an invalidation must reach.  The paper's
headline structural result is that over 85% of such writes invalidate
at most one cache, which is what justifies the limited-pointer
directories of Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import SimulationResult


@dataclass(frozen=True)
class InvalidationHistogram:
    """Distribution of invalidation sizes on clean-block writes.

    Attributes:
        buckets: ``{k: fraction}`` — fraction of clean-block writes that
            found the block in exactly *k* other caches.
        population: number of clean-block writes observed.
    """

    buckets: dict[int, float]
    population: int

    def fraction_at_most(self, k: int) -> float:
        """Cumulative fraction of writes invalidating <= k caches."""
        return sum(
            fraction for sharers, fraction in self.buckets.items() if sharers <= k
        )

    @property
    def single_or_none_fraction(self) -> float:
        """The paper's ">85% need at most one invalidation" statistic."""
        return self.fraction_at_most(1)

    @property
    def mean_invalidations(self) -> float:
        """Average number of caches invalidated per clean-block write."""
        return sum(sharers * fraction for sharers, fraction in self.buckets.items())

    def percent_rows(self, max_caches: int) -> list[tuple[int, float]]:
        """(k, percent) rows padded to *max_caches*, as Figure 1 plots."""
        return [
            (k, 100.0 * self.buckets.get(k, 0.0)) for k in range(max_caches + 1)
        ]


def invalidation_histogram(result: SimulationResult) -> InvalidationHistogram:
    """Build the Figure 1 histogram from a simulation result."""
    return InvalidationHistogram(
        buckets=result.invalidation_distribution(),
        population=sum(result.clean_write_histogram.values()),
    )
