"""Bus-cycle breakdowns by operation (paper Table 5 and Figure 4)."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.result import SimulationResult
from repro.cost.accounting import CostCategory
from repro.cost.bus import BusModel

#: Row order used by paper Table 5.
TABLE5_ROWS: tuple[CostCategory, ...] = (
    CostCategory.MEM_ACCESS,
    CostCategory.CACHE_ACCESS,
    CostCategory.WRITE_BACK,
    CostCategory.INVALIDATION,
    CostCategory.WRITE_THROUGH_OR_UPDATE,
    CostCategory.DIR_ACCESS,
)


def breakdown_table(
    results: Mapping[str, SimulationResult] | Sequence[SimulationResult],
    bus: BusModel,
) -> dict[str, dict[CostCategory, float]]:
    """Table 5: per-scheme cycles/reference by category plus ``total``.

    Accepts either a mapping of scheme name -> result or a sequence of
    results (keyed by their ``scheme`` attribute).
    """
    if not isinstance(results, Mapping):
        results = {result.scheme: result for result in results}
    table: dict[str, dict[CostCategory, float]] = {}
    for scheme, result in results.items():
        breakdown = result.breakdown_per_reference(bus)
        row = {category: breakdown.get(category) for category in TABLE5_ROWS}
        table[scheme] = row
    return table


def breakdown_fractions(
    results: Mapping[str, SimulationResult] | Sequence[SimulationResult],
    bus: BusModel,
) -> dict[str, dict[CostCategory, float]]:
    """Figure 4: each category as a fraction of the scheme's own total."""
    if not isinstance(results, Mapping):
        results = {result.scheme: result for result in results}
    table: dict[str, dict[CostCategory, float]] = {}
    for scheme, result in results.items():
        fractions = result.breakdown_per_reference(bus).fractions()
        table[scheme] = {
            category: fractions.get(category, 0.0) for category in TABLE5_ROWS
        }
    return table
