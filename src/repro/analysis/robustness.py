"""Seed robustness: do the conclusions survive workload randomness?

The paper's traces are single recordings ("the traces represent at
least one possible run of a real program").  Synthetic workloads can do
better: regenerating each workload under different seeds gives a
sampling distribution for every headline metric, so ordering claims
("Dir0B beats WTI") can be checked for statistical robustness rather
than asserted from one draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.result import merge_results
from repro.core.simulator import Simulator
from repro.cost.bus import BusModel
from repro.workloads.base import SyntheticWorkload
from repro.workloads.registry import workload_config


@dataclass(frozen=True)
class MetricDistribution:
    """Sampling distribution of one metric across workload seeds."""

    scheme: str
    samples: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("at least one sample is required")

    @property
    def mean(self) -> float:
        """Sample mean."""
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        """Sample standard deviation (n-1)."""
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        variance = sum((x - mean) ** 2 for x in self.samples) / (
            len(self.samples) - 1
        )
        return math.sqrt(variance)

    @property
    def coefficient_of_variation(self) -> float:
        """std / mean — the relative spread of the metric."""
        if self.mean == 0:
            return 0.0
        return self.std / self.mean

    @property
    def min(self) -> float:
        """Smallest sample."""
        return min(self.samples)

    @property
    def max(self) -> float:
        """Largest sample."""
        return max(self.samples)

    def dominates(self, other: "MetricDistribution") -> bool:
        """True when every sample of self exceeds every sample of other.

        The strongest ordering statement possible from the samples: the
        metric ranges do not even overlap.
        """
        return self.min > other.max


def seed_sensitivity(
    schemes: Sequence[str],
    bus: BusModel,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    length: int = 30_000,
    workloads: Sequence[str] = ("pops", "thor", "pero"),
    simulator: Simulator | None = None,
) -> dict[str, MetricDistribution]:
    """Bus cycles/reference distribution per scheme across seeds.

    Each seed regenerates all three workload analogues (the seed
    offsets the per-workload base seeds) and pools them, exactly like
    the headline experiment.
    """
    simulator = simulator or Simulator()
    samples: dict[str, list[float]] = {scheme: [] for scheme in schemes}
    for seed_offset in seeds:
        traces = []
        for name in workloads:
            config = workload_config(name, length=length)
            config = replace(config, seed=config.seed + 1000 * seed_offset)
            traces.append(SyntheticWorkload(config).build())
        for scheme in schemes:
            merged = merge_results(
                [simulator.run(trace, scheme) for trace in traces]
            )
            samples[scheme].append(merged.bus_cycles_per_reference(bus))
    return {
        scheme: MetricDistribution(scheme, tuple(values))
        for scheme, values in samples.items()
    }
