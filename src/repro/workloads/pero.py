"""PERO analogue: a parallel VLSI router.

The paper's PERO trace (Jonathan Rose's parallel router) differs from
POPS/THOR in two ways it calls out explicitly: the fraction of
references to shared blocks is much smaller (hence much lower coherence
traffic — the low bars of Figure 3), and the high read-to-write ratio
comes from the routing algorithm itself (grid scanning), not from lock
spins.  The analogue therefore uses minimal locking, a mostly-private
cost-grid working set, and a modest read-only shared routing database.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadConfig
from repro.workloads.layout import AddressSpaceLayout


def pero_config(
    length: int = 200_000, num_processes: int = 4, seed: int = 2003
) -> WorkloadConfig:
    """Configuration of the PERO trace analogue."""
    return WorkloadConfig(
        name="pero",
        num_processes=num_processes,
        length=length,
        seed=seed,
        quantum=8,
        instr_fraction=0.523,
        system_fraction=0.080,
        # Locks exist (result merging) but are rarely contended.
        p_lock_attempt=0.0008,
        num_locks=4,
        hot_lock_bias=0.25,
        cs_data_refs=25,
        spin_reads_per_step=1,
        write_fraction_protected=0.20,
        # Small shared routing database, read-mostly.
        p_shared_read=0.030,
        p_shared_update=0.0004,
        p_migratory=0.0015,
        p_buffer=0.006,
        migratory_read_first=0.85,
        # The router's private cost grid: scanning reads + cell updates.
        write_fraction_private=0.24,
        layout=AddressSpaceLayout(
            private_blocks=192,
            shared_read_blocks=48,
            migratory_blocks=16,
            buffer_blocks=16,
        ),
        description="parallel VLSI router (PERO analogue)",
    )
