"""Address-space layout for synthetic workloads.

Carves a 32-bit-style address space into disjoint regions: per-process
code and private data, the shared data structures (read-mostly tables,
migratory objects, producer-consumer buffers), lock words with their
protected data, and kernel text/data for the OS-activity component.
All region bases are block-aligned and far enough apart that regions
can never overlap for the supported process counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.address import DEFAULT_BLOCK_BYTES

_INSTR_BASE = 0x0100_0000
_PRIVATE_BASE = 0x2000_0000
_SHARED_READ_BASE = 0x4000_0000
_MIGRATORY_BASE = 0x5000_0000
_BUFFER_BASE = 0x6000_0000
_LOCK_BASE = 0x7000_0000
_PROTECTED_BASE = 0x7100_0000
_KERNEL_TEXT_BASE = 0x8000_0000
_KERNEL_DATA_BASE = 0x9000_0000
_PER_PROCESS_STRIDE = 0x0010_0000

_MAX_PROCESSES = _PER_PROCESS_STRIDE // DEFAULT_BLOCK_BYTES


@dataclass(frozen=True)
class AddressSpaceLayout:
    """Block-aligned region map for one synthetic workload.

    All ``*_blocks`` attributes size their region in cache blocks; the
    per-process regions are replicated at a fixed stride per pid.
    """

    block_bytes: int = DEFAULT_BLOCK_BYTES
    private_blocks: int = 128
    shared_read_blocks: int = 64
    migratory_blocks: int = 32
    buffer_blocks: int = 32
    protected_blocks_per_lock: int = 4
    kernel_shared_blocks: int = 48
    kernel_private_blocks: int = 32

    def __post_init__(self) -> None:
        for name in (
            "private_blocks",
            "shared_read_blocks",
            "migratory_blocks",
            "buffer_blocks",
            "protected_blocks_per_lock",
            "kernel_shared_blocks",
            "kernel_private_blocks",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < _MAX_PROCESSES:
            raise ValueError(f"pid {pid} outside supported range [0, {_MAX_PROCESSES})")

    def instr_address(self, pid: int, offset_words: int) -> int:
        """Instruction-fetch address for a process's code region."""
        self._check_pid(pid)
        return _INSTR_BASE + pid * _PER_PROCESS_STRIDE + 4 * offset_words

    def private_address(self, pid: int, block_index: int) -> int:
        """A block in one process's private data region."""
        self._check_pid(pid)
        index = block_index % self.private_blocks
        return _PRIVATE_BASE + pid * _PER_PROCESS_STRIDE + index * self.block_bytes

    def shared_read_address(self, block_index: int) -> int:
        """A block in the shared read-mostly region."""
        return _SHARED_READ_BASE + (block_index % self.shared_read_blocks) * self.block_bytes

    def migratory_address(self, block_index: int) -> int:
        """A block in the migratory shared-object region."""
        return _MIGRATORY_BASE + (block_index % self.migratory_blocks) * self.block_bytes

    def buffer_address(self, block_index: int) -> int:
        """A block in the producer-consumer buffer region."""
        return _BUFFER_BASE + (block_index % self.buffer_blocks) * self.block_bytes

    def lock_address(self, lock_index: int) -> int:
        """The lock word for lock *lock_index* (one block per lock)."""
        if lock_index < 0:
            raise ValueError("lock_index must be non-negative")
        return _LOCK_BASE + lock_index * self.block_bytes

    def protected_address(self, lock_index: int, block_index: int) -> int:
        """Data protected by lock *lock_index*."""
        if lock_index < 0:
            raise ValueError("lock_index must be non-negative")
        base = _PROTECTED_BASE + lock_index * self.protected_blocks_per_lock * self.block_bytes
        return base + (block_index % self.protected_blocks_per_lock) * self.block_bytes

    def kernel_text_address(self, offset_words: int) -> int:
        """Kernel instruction fetch address (shared text)."""
        return _KERNEL_TEXT_BASE + 4 * offset_words

    def kernel_shared_address(self, block_index: int) -> int:
        """Kernel data shared across processes (run queues, etc.)."""
        return _KERNEL_DATA_BASE + (block_index % self.kernel_shared_blocks) * self.block_bytes

    def kernel_private_address(self, pid: int, block_index: int) -> int:
        """Kernel data private to one process (u-area analogue)."""
        self._check_pid(pid)
        base = (
            _KERNEL_DATA_BASE
            + 0x0008_0000
            + pid * _PER_PROCESS_STRIDE
        )
        return base + (block_index % self.kernel_private_blocks) * self.block_bytes
