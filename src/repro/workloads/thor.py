"""THOR analogue: a parallel logic simulator.

The paper's THOR trace (Larry Soule's parallel logic simulator) shows
~45% instructions, the highest system-mode share of the three traces
(~15%), one-third of reads spinning on locks, and event-queue style
sharing: simulation events migrate between evaluator processes and
fan-out nets are read by several consumers.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadConfig
from repro.workloads.layout import AddressSpaceLayout


def thor_config(
    length: int = 200_000, num_processes: int = 4, seed: int = 2002
) -> WorkloadConfig:
    """Configuration of the THOR trace analogue."""
    return WorkloadConfig(
        name="thor",
        num_processes=num_processes,
        length=length,
        seed=seed,
        quantum=4,
        instr_fraction=0.452,
        system_fraction=0.36,
        # Event-queue locks: very hot, short critical sections.
        p_lock_attempt=0.0070,
        num_locks=2,
        hot_lock_bias=0.85,
        cs_data_refs=200,
        spin_reads_per_step=0.60,
        write_fraction_protected=0.15,
        # Sharing: nets and event records.
        p_shared_read=0.060,
        p_shared_update=0.0010,
        p_migratory=0.0050,
        p_buffer=0.020,
        migratory_read_first=0.72,
        write_fraction_private=0.38,
        layout=AddressSpaceLayout(
            private_blocks=128,
            shared_read_blocks=64,
            migratory_blocks=32,
            buffer_blocks=32,
        ),
        description="parallel logic simulator (THOR analogue)",
    )
