"""Reusable access-pattern building blocks for workload generators."""

from __future__ import annotations

import random
from dataclasses import dataclass


class LocalityPicker:
    """Index picker with a hot working set.

    With probability *p_hot* the pick comes from the first
    ``hot_fraction`` of the index range (the hot set); otherwise it is
    uniform over the whole range.  This yields the high re-reference
    rates real data regions show while still eventually touching every
    block (producing a realistic first-reference-miss tail).
    """

    def __init__(
        self, size: int, hot_fraction: float = 0.15, p_hot: float = 0.85
    ) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= p_hot <= 1.0:
            raise ValueError("p_hot must be in [0, 1]")
        self._size = size
        self._hot_size = max(1, int(size * hot_fraction))
        self._p_hot = p_hot

    def pick(self, rng: random.Random) -> int:
        """Draw one index with hot-set locality."""
        if rng.random() < self._p_hot:
            return rng.randrange(self._hot_size)
        return rng.randrange(self._size)


@dataclass
class ProducerConsumerBuffers:
    """A set of single-producer, multi-consumer shared buffers.

    Buffer *b* is produced (written) by process ``b % num_processes``
    and consumed (read) by every other process — the classic
    one-writer/many-readers pattern that makes broadcast invalidation
    look attractive and sequential invalidation slightly costlier.
    """

    num_buffers: int
    blocks_per_buffer: int
    num_processes: int

    def __post_init__(self) -> None:
        if self.num_buffers < 1 or self.blocks_per_buffer < 1:
            raise ValueError("buffer dimensions must be >= 1")
        if self.num_processes < 1:
            raise ValueError("num_processes must be >= 1")

    def producer_of(self, buffer: int) -> int:
        """The pid that produces (writes) this buffer."""
        return buffer % self.num_processes

    def buffers_produced_by(self, pid: int) -> list[int]:
        """Buffers assigned to *pid* as producer."""
        return [
            buffer
            for buffer in range(self.num_buffers)
            if self.producer_of(buffer) == pid
        ]

    def block_index(self, buffer: int, slot: int) -> int:
        """Global block index within the buffer region."""
        return (buffer * self.blocks_per_buffer + slot % self.blocks_per_buffer)

    def random_slot(self, rng: random.Random) -> int:
        """Draw a uniform slot index within a buffer."""
        return rng.randrange(self.blocks_per_buffer)

    def random_buffer(self, rng: random.Random) -> int:
        """Draw a uniform buffer index."""
        return rng.randrange(self.num_buffers)
