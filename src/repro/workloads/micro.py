"""Sharing-pattern microbenchmarks.

Each generator isolates exactly one of the sharing behaviours that the
full POPS/THOR/PERO analogues mix together, giving protocols a
characteristic signature to be tested and explained against:

* :func:`private_trace` — disjoint per-process data; *no* coherence
  traffic under any scheme (the control).
* :func:`readonly_trace` — everyone reads one shared table; free for
  multi-copy schemes, pathological for ``Dir1NB``.
* :func:`migratory_trace` — one object passed around, read-modify-write
  per visit; the pattern behind ``rm-blk-drty``/``wh-blk-cln`` pairs.
* :func:`producer_consumer_trace` — one writer, many readers; the case
  where broadcast invalidation beats sequential messages.
* :func:`spinlock_trace` — a single contended test-and-test-and-set
  lock; the Section 5.2 pathology in its purest form.
* :func:`false_sharing_trace` — processes write *different words* of
  the same block; coherence traffic with no true communication.

All generators are deterministic and emit the standard ~50% instruction
mix so their frequencies are comparable with the full workloads.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace
from repro.workloads.layout import AddressSpaceLayout

_LAYOUT = AddressSpaceLayout()


def _interleave_with_instr(
    data_records: list[TraceRecord], instr_fraction: float, seed: int
) -> list[TraceRecord]:
    """Insert per-process instruction fetches around data references."""
    rng = random.Random(seed)
    ratio = instr_fraction / (1.0 - instr_fraction) if instr_fraction < 1.0 else 0.0
    offsets: dict[int, int] = {}
    records: list[TraceRecord] = []
    for record in data_records:
        count = int(ratio)
        if rng.random() < ratio - count:
            count += 1
        for _ in range(count):
            offset = offsets.get(record.pid, 0) + 1
            offsets[record.pid] = offset % 2048
            records.append(
                TraceRecord(
                    cpu=record.cpu,
                    pid=record.pid,
                    ref_type=RefType.INSTR,
                    address=_LAYOUT.instr_address(record.pid, offsets[record.pid]),
                )
            )
        records.append(record)
    return records


def _data(pid: int, ref_type: RefType, address: int, **flags) -> TraceRecord:
    return TraceRecord(cpu=pid, pid=pid, ref_type=ref_type, address=address, **flags)


def _finish(
    name: str, data_records: list[TraceRecord], length: int,
    instr_fraction: float, seed: int, description: str,
) -> Trace:
    records = _interleave_with_instr(data_records, instr_fraction, seed)
    return Trace(name, records[:length], description)


def private_trace(
    num_processes: int = 4, length: int = 20_000,
    instr_fraction: float = 0.5, seed: int = 11,
) -> Trace:
    """Disjoint working sets: the zero-coherence control."""
    rng = random.Random(seed)
    data: list[TraceRecord] = []
    while len(data) < length:
        for pid in range(num_processes):
            block = rng.randrange(_LAYOUT.private_blocks)
            address = _LAYOUT.private_address(pid, block)
            ref_type = RefType.WRITE if rng.random() < 0.25 else RefType.READ
            data.append(_data(pid, ref_type, address))
    return _finish("micro-private", data, length, instr_fraction, seed,
                   "private working sets only")


def readonly_trace(
    num_processes: int = 4, length: int = 20_000, shared_blocks: int = 16,
    instr_fraction: float = 0.5, seed: int = 12,
) -> Trace:
    """Everyone reads one shared table; nobody ever writes it."""
    rng = random.Random(seed)
    data: list[TraceRecord] = []
    while len(data) < length:
        for pid in range(num_processes):
            block = rng.randrange(shared_blocks)
            data.append(_data(pid, RefType.READ, _LAYOUT.shared_read_address(block)))
    return _finish("micro-readonly", data, length, instr_fraction, seed,
                   "read-only shared table")


def migratory_trace(
    num_processes: int = 4, length: int = 20_000, visit_refs: int = 6,
    instr_fraction: float = 0.5, seed: int = 13,
) -> Trace:
    """One object migrates round-robin; each visit reads then writes it."""
    address = _LAYOUT.migratory_address(0)
    data: list[TraceRecord] = []
    pid = 0
    while len(data) < length:
        for _ in range(visit_refs // 2):
            data.append(_data(pid, RefType.READ, address))
            data.append(_data(pid, RefType.WRITE, address))
        pid = (pid + 1) % num_processes
    return _finish("micro-migratory", data, length, instr_fraction, seed,
                   "single migratory object, round-robin")


def producer_consumer_trace(
    num_processes: int = 4, length: int = 20_000, buffer_blocks: int = 8,
    reads_per_write: int = 3, instr_fraction: float = 0.5, seed: int = 14,
) -> Trace:
    """Process 0 produces a ring buffer; all others consume every slot."""
    rng = random.Random(seed)
    data: list[TraceRecord] = []
    slot = 0
    while len(data) < length:
        address = _LAYOUT.buffer_address(slot % buffer_blocks)
        data.append(_data(0, RefType.WRITE, address))
        consumers = list(range(1, num_processes))
        rng.shuffle(consumers)
        for _ in range(reads_per_write):
            for pid in consumers:
                data.append(_data(pid, RefType.READ, address))
        slot += 1
    return _finish("micro-producer-consumer", data, length, instr_fraction, seed,
                   "single producer, many consumers")


def spinlock_trace(
    num_processes: int = 4, length: int = 20_000, hold_refs: int = 10,
    spins_per_waiter: int = 4, instr_fraction: float = 0.5, seed: int = 15,
) -> Trace:
    """One contended lock: acquire, hold, release, next holder."""
    lock_address = _LAYOUT.lock_address(0)
    protected = [_LAYOUT.protected_address(0, i) for i in range(4)]
    rng = random.Random(seed)
    data: list[TraceRecord] = []
    holder = 0
    while len(data) < length:
        # Waiters spin while the holder works.
        waiters = [pid for pid in range(num_processes) if pid != holder]
        work = []
        for _ in range(hold_refs):
            address = rng.choice(protected)
            ref_type = RefType.WRITE if rng.random() < 0.3 else RefType.READ
            work.append(_data(holder, ref_type, address))
        spin_reads = [
            _data(pid, RefType.READ, lock_address, lock=True, spin=True)
            for _ in range(spins_per_waiter)
            for pid in waiters
        ]
        # Interleave holder work and waiter spins deterministically.
        merged: list[TraceRecord] = []
        while work or spin_reads:
            if work:
                merged.append(work.pop(0))
            if spin_reads:
                merged.append(spin_reads.pop(0))
        data.extend(merged)
        # Hand-off: release write, next holder's test + test-and-set.
        data.append(_data(holder, RefType.WRITE, lock_address, lock=True))
        holder = (holder + 1) % num_processes
        data.append(_data(holder, RefType.READ, lock_address, lock=True))
        data.append(_data(holder, RefType.WRITE, lock_address, lock=True))
    return _finish("micro-spinlock", data, length, instr_fraction, seed,
                   "one contended test-and-test-and-set lock")


def false_sharing_trace(
    num_processes: int = 4, length: int = 20_000,
    instr_fraction: float = 0.5, seed: int = 16,
) -> Trace:
    """Each process updates its *own word* of one shared block.

    No data is ever truly shared, yet every write invalidates (or
    updates) the other caches — coherence traffic created purely by
    block granularity.
    """
    base = _LAYOUT.shared_read_address(0)
    data: list[TraceRecord] = []
    while len(data) < length:
        for pid in range(num_processes):
            address = base + 4 * (pid % 4)
            data.append(_data(pid, RefType.READ, address))
            data.append(_data(pid, RefType.WRITE, address))
    return _finish("micro-false-sharing", data, length, instr_fraction, seed,
                   "per-process words within one block")


MICRO_GENERATORS = {
    "private": private_trace,
    "readonly": readonly_trace,
    "migratory": migratory_trace,
    "producer-consumer": producer_consumer_trace,
    "spinlock": spinlock_trace,
    "false-sharing": false_sharing_trace,
}


def micro_traces(length: int = 20_000, num_processes: int = 4) -> Iterator[Trace]:
    """Yield every microbenchmark trace at the given size."""
    for generator in MICRO_GENERATORS.values():
        yield generator(num_processes=num_processes, length=length)
