"""Synthetic multiprocessor workloads (ATUM-trace substitutes).

The paper evaluates three parallel applications traced on a 4-CPU VAX
8350 (POPS, THOR, PERO — Section 4.4).  Those ATUM traces are not
available, so this subpackage generates deterministic synthetic traces
with the same structural features the paper's results depend on:
instruction/data mix, test-and-test-and-set spin locks, private working
sets, read-mostly / migratory / producer-consumer sharing, OS activity,
and (rare) process migration.  See DESIGN.md for the substitution
rationale and EXPERIMENTS.md for the calibration record.
"""

from repro.workloads.layout import AddressSpaceLayout
from repro.workloads.locks import Lock, LockTable
from repro.workloads.base import SyntheticWorkload, WorkloadConfig
from repro.workloads.pops import pops_config
from repro.workloads.thor import thor_config
from repro.workloads.pero import pero_config
from repro.workloads.micro import MICRO_GENERATORS, micro_traces
from repro.workloads.modern import MODERN_GENERATORS, modern_traces
from repro.workloads.registry import (
    available_workloads,
    make_trace,
    standard_traces,
    workload_config,
)

__all__ = [
    "AddressSpaceLayout",
    "Lock",
    "LockTable",
    "SyntheticWorkload",
    "WorkloadConfig",
    "pops_config",
    "thor_config",
    "pero_config",
    "available_workloads",
    "make_trace",
    "standard_traces",
    "workload_config",
    "MICRO_GENERATORS",
    "micro_traces",
    "MODERN_GENERATORS",
    "modern_traces",
]
