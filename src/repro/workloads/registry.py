"""Workload registry: build the paper's three traces by name."""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.errors import UnknownSchemeError
from repro.trace.stream import Trace
from repro.workloads.base import SyntheticWorkload, WorkloadConfig
from repro.workloads.pero import pero_config
from repro.workloads.pops import pops_config
from repro.workloads.thor import thor_config

_CONFIGS: dict[str, Callable[..., WorkloadConfig]] = {
    "pops": pops_config,
    "thor": thor_config,
    "pero": pero_config,
}

DEFAULT_LENGTH = 200_000
"""Default trace length; the paper's traces are ~3.2M references, which
a pure-Python study scales down while keeping the reference mix."""


def available_workloads() -> list[str]:
    """Sorted names of the built-in workload analogues."""
    return sorted(_CONFIGS)


def workload_config(name: str, length: int = DEFAULT_LENGTH, **kwargs) -> WorkloadConfig:
    """The configuration of a named workload analogue."""
    try:
        factory = _CONFIGS[name.lower()]
    except KeyError:
        raise UnknownSchemeError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        ) from None
    return factory(length=length, **kwargs)


def make_trace(name: str, length: int = DEFAULT_LENGTH, **kwargs) -> Trace:
    """Generate a named workload's trace."""
    return SyntheticWorkload(workload_config(name, length=length, **kwargs)).build()


def stream_trace(name: str, length: int = DEFAULT_LENGTH, **kwargs):
    """Stream a named workload's records without materializing the trace.

    Yields exactly the records :func:`make_trace` would produce (the
    generator is the same code path), so feeding the stream to
    :func:`repro.store.write_stream` packs a ``.ctrc`` file whose
    fingerprint matches the in-memory trace — at bounded memory for any
    length.
    """
    workload = SyntheticWorkload(workload_config(name, length=length, **kwargs))
    return workload.iter_records()


@lru_cache(maxsize=8)
def _cached_standard(length: int) -> tuple[Trace, ...]:
    return tuple(make_trace(name, length=length) for name in ("pops", "thor", "pero"))


def standard_traces(length: int = DEFAULT_LENGTH) -> list[Trace]:
    """The three-trace suite used throughout the evaluation.

    Cached per length: generating traces is the most expensive step of
    an experiment and every table/figure reuses the same three.
    """
    return list(_cached_standard(length))
