"""POPS analogue: a parallel rule-based production system (OPS5).

The paper's POPS trace (a parallel OPS5 implementation, Gupta et al.)
shows: ~52% instructions, a high read-to-write ratio (~4.8) driven by
spin locks (roughly one-third of reads are lock spins), and heavy
sharing through the working-memory/rule data structures.  The analogue
leans on a small number of hot locks with long-ish critical sections
(match-phase updates) and migratory working-memory elements.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadConfig
from repro.workloads.layout import AddressSpaceLayout


def pops_config(
    length: int = 200_000, num_processes: int = 4, seed: int = 2001
) -> WorkloadConfig:
    """Configuration of the POPS trace analogue."""
    return WorkloadConfig(
        name="pops",
        num_processes=num_processes,
        length=length,
        seed=seed,
        quantum=4,
        instr_fraction=0.517,
        system_fraction=0.27,
        # Contended locks: frequent attempts on a hot lock generate the
        # spin-read third of all reads.
        p_lock_attempt=0.0053,
        num_locks=2,
        hot_lock_bias=0.85,
        cs_data_refs=240,
        spin_reads_per_step=0.55,
        write_fraction_protected=0.13,
        # Sharing: rule/working-memory structures.
        p_shared_read=0.060,
        p_shared_update=0.0008,
        p_migratory=0.0040,
        p_buffer=0.016,
        migratory_read_first=0.75,
        # Private match-phase data: read-dominated.
        write_fraction_private=0.34,
        layout=AddressSpaceLayout(
            private_blocks=144,
            shared_read_blocks=72,
            migratory_blocks=24,
            buffer_blocks=32,
        ),
        description="parallel OPS5 production system (POPS analogue)",
    )
