"""The synthetic workload generator.

:class:`SyntheticWorkload` runs a deterministic round-robin scheduler
over ``num_processes`` process state machines and materializes the
interleaved reference stream as a :class:`~repro.trace.stream.Trace`.
Each process mixes:

* instruction fetches (sequential per-process code, shared kernel text
  in system mode);
* private data reads/writes over a hot-set working set;
* reads of a shared read-mostly region, occasionally updated by a
  writer (one-writer/many-readers invalidations);
* migratory read-modify-write objects (the dominant source of
  dirty-block hand-offs);
* single-producer/multi-consumer buffers;
* test-and-test-and-set critical sections around shared protected
  data, with blocked processes emitting spin reads every turn;
* OS activity: a configurable fraction of work runs in system mode
  against kernel-private and kernel-shared data;
* rare process migration between CPUs (visible only under the
  processor-sharing view).

Every knob lives in :class:`WorkloadConfig`; the POPS/THOR/PERO
analogue configurations are in their own modules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.errors import ConfigurationError
from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace
from repro.workloads.layout import AddressSpaceLayout
from repro.workloads.locks import LockTable
from repro.workloads.patterns import LocalityPicker, ProducerConsumerBuffers


@dataclass(frozen=True)
class WorkloadConfig:
    """All parameters of one synthetic workload.

    Probabilities prefixed ``p_`` select the action of one data step
    and are evaluated in order (lock attempt, shared read, shared
    update, migratory episode, buffer access); the remaining mass goes
    to private data.  See module docstring for the behaviours.
    """

    name: str = "synthetic"
    num_processes: int = 4
    length: int = 200_000
    seed: int = 1988
    quantum: int = 6

    instr_fraction: float = 0.497
    system_fraction: float = 0.10

    p_lock_attempt: float = 0.012
    p_shared_read: float = 0.075
    p_shared_update: float = 0.0035
    p_migratory: float = 0.016
    p_buffer: float = 0.030

    write_fraction_private: float = 0.24
    write_fraction_protected: float = 0.35
    migratory_read_first: float = 0.85
    buffer_consume_fraction: float = 0.70

    num_locks: int = 4
    hot_lock_bias: float = 0.5
    cs_data_refs: int = 6
    #: Spin test reads emitted per blocked scheduling step.  Fractional
    #: values emit probabilistically (a slow spin loop with several
    #: instructions per test); a step that emits no test still fetches
    #: a spin-loop instruction.
    spin_reads_per_step: float = 1.0

    #: Within a critical section, fraction of protected-data references
    #: that go to the single block this holder focuses on (the rest
    #: spread over the lock's whole protected region).
    cs_focus: float = 0.8

    num_buffers: int = 4
    blocks_per_buffer: int = 8

    migration_interval: int = 4000
    p_migrate: float = 0.05

    layout: AddressSpaceLayout = field(default_factory=AddressSpaceLayout)
    description: str = ""

    def __post_init__(self) -> None:
        if self.num_processes < 1:
            raise ConfigurationError("num_processes must be >= 1")
        if self.length < 1:
            raise ConfigurationError("length must be >= 1")
        if self.quantum < 1:
            raise ConfigurationError("quantum must be >= 1")
        if not 0.0 <= self.instr_fraction < 1.0:
            raise ConfigurationError("instr_fraction must be in [0, 1)")
        if not 0.0 <= self.system_fraction <= 1.0:
            raise ConfigurationError("system_fraction must be in [0, 1]")
        action_mass = (
            self.p_lock_attempt
            + self.p_shared_read
            + self.p_shared_update
            + self.p_migratory
            + self.p_buffer
        )
        if action_mass > 1.0:
            raise ConfigurationError(
                f"action probabilities sum to {action_mass:.3f} > 1"
            )
        if self.num_locks < 0:
            raise ConfigurationError("num_locks must be non-negative")
        if self.p_lock_attempt > 0 and self.num_locks == 0:
            raise ConfigurationError("lock attempts require num_locks >= 1")
        if self.cs_data_refs < 1:
            raise ConfigurationError("cs_data_refs must be >= 1")
        if self.spin_reads_per_step <= 0:
            raise ConfigurationError("spin_reads_per_step must be positive")

    def scaled_to(self, length: int) -> "WorkloadConfig":
        """The same workload at a different trace length."""
        return replace(self, length=length)


class _Process:
    """One process's state machine; emits records via the workload."""

    def __init__(self, workload: "SyntheticWorkload", pid: int) -> None:
        self.workload = workload
        self.config = workload.config
        self.pid = pid
        self.cpu = pid % max(1, self.config.num_processes)
        self.rng = random.Random((self.config.seed << 8) ^ (pid * 0x9E3779B1))
        self.instr_offset = pid * 17
        self.kernel_instr_offset = pid * 31
        self.blocked_on = None  # Lock instance while spinning
        self.cs_remaining = 0
        self.cs_block = 0
        self.held_lock = None
        self.pending_write = None  # (address, system) for read-modify-write
        self.private_picker = LocalityPicker(self.config.layout.private_blocks)
        self.produced_buffers = workload.buffers.buffers_produced_by(pid)
        self.produce_slot = 0

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------

    def _emit(self, ref_type, address, system, lock=False, spin=False) -> None:
        self.workload.emit(
            TraceRecord(
                cpu=self.cpu,
                pid=self.pid,
                ref_type=ref_type,
                address=address,
                system=system,
                lock=lock,
                spin=spin,
            )
        )

    def _emit_instr(self, system: bool) -> None:
        layout = self.config.layout
        if system:
            self.kernel_instr_offset = (self.kernel_instr_offset + 1) % 4096
            address = layout.kernel_text_address(self.kernel_instr_offset)
        else:
            self.instr_offset = (self.instr_offset + 1) % 2048
            address = layout.instr_address(self.pid, self.instr_offset)
        self._emit(RefType.INSTR, address, system)

    def _maybe_emit_instr(self, system: bool) -> None:
        fraction = self.config.instr_fraction
        if fraction <= 0.0:
            return
        # Emitting f/(1-f) instructions per data reference yields an
        # instruction fraction of f overall; the ratio exceeds one when
        # instructions outnumber data references.
        ratio = fraction / (1.0 - fraction)
        whole, fractional = int(ratio), ratio - int(ratio)
        for _ in range(whole):
            self._emit_instr(system)
        if self.rng.random() < fractional:
            self._emit_instr(system)

    def _emit_data(self, address, is_write, system, lock=False, spin=False) -> None:
        self._maybe_emit_instr(system)
        ref_type = RefType.WRITE if is_write else RefType.READ
        self._emit(ref_type, address, system, lock=lock, spin=spin)

    # ------------------------------------------------------------------
    # One scheduling step = one data action
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Execute one data action for this process."""
        if self.blocked_on is not None:
            self._spin_step()
            return
        if self.pending_write is not None:
            address, system = self.pending_write
            self.pending_write = None
            self._emit_data(address, True, system)
            return
        if self.cs_remaining > 0:
            self._critical_section_step()
            return
        self._free_step()

    def _spin_step(self) -> None:
        lock = self.blocked_on
        if not lock.held:
            # The test finally succeeds: test read, then test-and-set.
            self.blocked_on = None
            self._acquire(lock)
            return
        rate = self.config.spin_reads_per_step
        count = int(rate)
        if self.rng.random() < rate - count:
            count += 1
        for _ in range(count):
            self._emit_data(lock.address, False, False, lock=True, spin=True)

    def _acquire(self, lock) -> None:
        # Successful test read followed by the test-and-set write.
        self._emit_data(lock.address, False, False, lock=True)
        self._emit_data(lock.address, True, False, lock=True)
        lock.acquire(self.pid)
        self.held_lock = lock
        self.cs_remaining = self.config.cs_data_refs
        self.cs_block = self.rng.randrange(
            self.config.layout.protected_blocks_per_lock
        )

    def _critical_section_step(self) -> None:
        lock = self.held_lock
        self.cs_remaining -= 1
        if self.cs_remaining == 0:
            # Release: a write to the lock word.
            self._emit_data(lock.address, True, False, lock=True)
            lock.release(self.pid)
            self.held_lock = None
            return
        layout = self.config.layout
        if self.rng.random() < self.config.cs_focus:
            block = self.cs_block
        else:
            block = self.rng.randrange(layout.protected_blocks_per_lock)
        address = layout.protected_address(lock.index, block)
        is_write = self.rng.random() < self.config.write_fraction_protected
        self._emit_data(address, is_write, False)

    def _free_step(self) -> None:
        config = self.config
        system = self.rng.random() < config.system_fraction
        roll = self.rng.random()

        if not system and roll < config.p_lock_attempt and config.num_locks:
            self._attempt_lock()
            return
        roll -= config.p_lock_attempt

        if roll < config.p_shared_read:
            self._shared_read(system)
            return
        roll -= config.p_shared_read

        if roll < config.p_shared_update:
            self._shared_update(system)
            return
        roll -= config.p_shared_update

        if roll < config.p_migratory:
            self._migratory_episode(system)
            return
        roll -= config.p_migratory

        if roll < config.p_buffer:
            self._buffer_access(system)
            return

        self._private_access(system)

    def _attempt_lock(self) -> None:
        config = self.config
        if self.rng.random() < config.hot_lock_bias:
            lock = self.workload.locks[0]
        else:
            lock = self.workload.locks[self.rng.randrange(config.num_locks)]
        if lock.held and lock.holder != self.pid:
            # Failed test: start spinning.
            lock.waiters.add(self.pid)
            self.blocked_on = lock
            self._emit_data(lock.address, False, False, lock=True, spin=True)
        elif not lock.held:
            self._acquire(lock)
        # Already holding it (can only happen with num_locks == 1 and a
        # re-attempt); treat as a no-op private access.
        else:
            self._private_access(False)

    def _shared_read(self, system: bool) -> None:
        layout = self.config.layout
        if system:
            block = self.rng.randrange(layout.kernel_shared_blocks)
            address = layout.kernel_shared_address(block)
        else:
            block = self.workload.shared_picker.pick(self.rng)
            address = layout.shared_read_address(block)
        self._emit_data(address, False, system)

    def _shared_update(self, system: bool) -> None:
        layout = self.config.layout
        if system:
            block = self.rng.randrange(layout.kernel_shared_blocks)
            address = layout.kernel_shared_address(block)
        else:
            block = self.workload.shared_picker.pick(self.rng)
            address = layout.shared_read_address(block)
        self._emit_data(address, True, system)

    def _migratory_episode(self, system: bool) -> None:
        layout = self.config.layout
        block = self.rng.randrange(layout.migratory_blocks)
        address = layout.migratory_address(block)
        if self.rng.random() < self.config.migratory_read_first:
            # Read-modify-write: read now, write on the next step.
            self._emit_data(address, False, system)
            self.pending_write = (address, system)
        else:
            self._emit_data(address, True, system)

    def _buffer_access(self, system: bool) -> None:
        layout = self.config.layout
        buffers = self.workload.buffers
        consume = (
            not self.produced_buffers
            or self.rng.random() < self.config.buffer_consume_fraction
        )
        if consume:
            # Consumers favour "their" neighbour's buffer, keeping most
            # producer invalidations single-cache (cf. paper Figure 1).
            if self.rng.random() < 0.75:
                buffer = (self.pid + 1) % buffers.num_buffers
            else:
                buffer = buffers.random_buffer(self.rng)
            if buffers.producer_of(buffer) == self.pid and buffers.num_buffers > 1:
                buffer = (buffer + 1) % buffers.num_buffers
            slot = buffers.random_slot(self.rng)
            address = layout.buffer_address(buffers.block_index(buffer, slot))
            self._emit_data(address, False, system)
        else:
            buffer = self.produced_buffers[
                self.produce_slot // buffers.blocks_per_buffer % len(self.produced_buffers)
            ]
            slot = self.produce_slot % buffers.blocks_per_buffer
            self.produce_slot += 1
            address = layout.buffer_address(buffers.block_index(buffer, slot))
            self._emit_data(address, True, system)

    def _private_access(self, system: bool) -> None:
        layout = self.config.layout
        if system:
            block = self.rng.randrange(layout.kernel_private_blocks)
            address = layout.kernel_private_address(self.pid, block)
        else:
            block = self.private_picker.pick(self.rng)
            address = layout.private_address(self.pid, block)
        is_write = self.rng.random() < self.config.write_fraction_private
        self._emit_data(address, is_write, system)


class SyntheticWorkload:
    """Builds a deterministic synthetic trace from a configuration."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.locks = LockTable(config.num_locks, config.layout)
        self.buffers = ProducerConsumerBuffers(
            num_buffers=config.num_buffers,
            blocks_per_buffer=config.blocks_per_buffer,
            num_processes=config.num_processes,
        )
        self.shared_picker = LocalityPicker(config.layout.shared_read_blocks)
        self._pending: list[TraceRecord] = []
        self._count = 0

    def emit(self, record: TraceRecord) -> None:
        """Append one record to the trace under construction."""
        self._pending.append(record)
        self._count += 1

    def _maybe_migrate(self, processes: list[_Process]) -> None:
        """Occasionally swap the CPUs of two processes (§4.4 migration)."""
        if len(processes) < 2 or self.rng.random() >= self.config.p_migrate:
            return
        first, second = self.rng.sample(range(len(processes)), 2)
        processes[first].cpu, processes[second].cpu = (
            processes[second].cpu,
            processes[first].cpu,
        )

    def iter_records(self) -> "Iterator[TraceRecord]":
        """Stream the trace's records without materializing the trace.

        Yields exactly the records :meth:`build` would produce, in the
        same order — the scheduler, RNG draws, and truncation at
        ``config.length`` are shared code, so streaming generation is
        bit-identical to materialized generation (the chunked-store
        differential tests hold this).  Buffered records are bounded by
        one scheduling round (``num_processes * quantum`` data actions
        plus their instruction fetches), so a generator feeding a
        :class:`~repro.store.writer.StreamingTraceWriter` can emit
        traces far larger than memory.  One workload instance supports
        one iteration at a time.
        """
        config = self.config
        processes = [_Process(self, pid) for pid in range(config.num_processes)]
        self._pending = []
        self._count = 0
        next_migration = config.migration_interval
        yielded = 0

        while self._count < config.length:
            for process in processes:
                for _ in range(config.quantum):
                    process.step()
                if self._count >= config.length:
                    break
            if self._count >= next_migration:
                self._maybe_migrate(processes)
                next_migration += config.migration_interval
            # Drain the round's records, truncating at the target length
            # (the final round can overshoot mid-quantum, exactly like
            # the materialized path's [:length] slice).
            for record in self._pending:
                if yielded == config.length:
                    break
                yielded += 1
                yield record
            self._pending.clear()
        self._pending = []

    def build(self) -> Trace:
        """Generate the full trace (deterministic for a given config)."""
        config = self.config
        return Trace(
            name=config.name,
            records=list(self.iter_records()),
            description=config.description
            or f"synthetic workload ({config.num_processes} processes)",
        )
