"""Modern-sharing workload generators (finite-capacity extension).

The paper's traces predate the idioms that dominate today's shared-
memory runtimes.  These generators model three of them, each mixing a
per-process private working set (so finite caches feel genuine
replacement pressure) with a characteristic sharing pattern:

* :func:`work_stealing_trace` — per-worker deques pushed/popped at the
  tail by their owner, stolen from the head by idle workers.  Mostly
  private with bursts of migratory transfer on steals — the pattern
  rewards ownership-based schemes and punishes ``Dir1NB``'s
  single-copy rule only during steal storms.
* :func:`rcu_read_mostly_trace` — many readers traverse a linked
  structure through a version pointer; a single updater periodically
  publishes a new version (copy, then pointer flip).  Near-read-only
  sharing with rare broadcast invalidations — the best case for
  limited-pointer directories until the pointer block forces
  broadcasts.
* :func:`sharded_counter_trace` — each process increments its own
  counter shard; a reader periodically sweeps every shard to
  aggregate.  Write-private/read-all: the sweep pulls every dirty
  shard out of its owner cache, one flush per shard per sweep.

All generators are deterministic, emit the standard ~50% instruction
mix, and follow the :mod:`repro.workloads.micro` conventions so they
drop into the same sweep and analysis tooling.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace
from repro.workloads.micro import _data, _finish, _LAYOUT


def work_stealing_trace(
    num_processes: int = 4, length: int = 20_000, deque_blocks: int = 4,
    tasks_per_refill: int = 6, steal_chance: float = 0.15,
    private_refs_per_task: int = 8, instr_fraction: float = 0.5, seed: int = 21,
) -> Trace:
    """Per-worker task deques with occasional steals from the head.

    Each worker owns ``deque_blocks`` slots plus a control block (head
    and tail indices share one block, as in Chase–Lev).  Owners push and
    pop at the tail — private in steady state — then run the task
    against their private working set.  With probability
    ``steal_chance`` an idle worker steals: it reads the victim's
    control block, reads the head slot, and writes the control block,
    migrating both blocks away from the owner.
    """
    rng = random.Random(seed)
    data: list[TraceRecord] = []
    control = [_LAYOUT.migratory_address(pid) for pid in range(num_processes)]
    slot_of = [
        [
            _LAYOUT.buffer_address(pid * deque_blocks + slot)
            for slot in range(deque_blocks)
        ]
        for pid in range(num_processes)
    ]
    tails = [0] * num_processes
    while len(data) < length:
        for pid in range(num_processes):
            # Refill the local deque: push at the tail (owner-private).
            for _ in range(tasks_per_refill):
                slot = slot_of[pid][tails[pid] % deque_blocks]
                tails[pid] += 1
                data.append(_data(pid, RefType.WRITE, slot))
                data.append(_data(pid, RefType.WRITE, control[pid]))
            # Drain: pop from the tail, then run the task privately.
            for _ in range(tasks_per_refill):
                if rng.random() < steal_chance:
                    thief = rng.randrange(num_processes - 1)
                    if thief >= pid:
                        thief += 1
                    victim = pid
                    data.append(_data(thief, RefType.READ, control[victim]))
                    data.append(
                        _data(thief, RefType.READ, slot_of[victim][0])
                    )
                    data.append(_data(thief, RefType.WRITE, control[victim]))
                    runner = thief
                else:
                    data.append(_data(pid, RefType.READ, control[pid]))
                    slot = slot_of[pid][(tails[pid] - 1) % deque_blocks]
                    data.append(_data(pid, RefType.READ, slot))
                    runner = pid
                for _ in range(private_refs_per_task):
                    block = rng.randrange(_LAYOUT.private_blocks)
                    address = _LAYOUT.private_address(runner, block)
                    ref_type = (
                        RefType.WRITE if rng.random() < 0.3 else RefType.READ
                    )
                    data.append(_data(runner, ref_type, address))
    return _finish("modern-work-stealing", data, length, instr_fraction, seed,
                   "per-worker deques with head steals")


def rcu_read_mostly_trace(
    num_processes: int = 4, length: int = 20_000, version_blocks: int = 8,
    reads_per_grace: int = 40, private_refs_per_read: int = 4,
    instr_fraction: float = 0.5, seed: int = 22,
) -> Trace:
    """RCU-style read-mostly structure with epoch republication.

    Readers load the version pointer, then walk the current version's
    blocks, touching a little private state between traversals.  Every
    ``reads_per_grace`` reader traversals, process 0 publishes: it
    writes a fresh copy of every block of the *next* version, then
    flips the pointer with a single write (the grace period is implicit
    — old-version blocks simply stop being referenced).
    """
    rng = random.Random(seed)
    data: list[TraceRecord] = []
    pointer = _LAYOUT.shared_read_address(0)
    epoch = 0
    def version_address(epoch: int, index: int) -> int:
        base = 1 + (epoch % 2) * version_blocks
        return _LAYOUT.shared_read_address(base + index)
    reads = 0
    while len(data) < length:
        pid = rng.randrange(num_processes)
        data.append(_data(pid, RefType.READ, pointer))
        for index in range(version_blocks):
            data.append(_data(pid, RefType.READ, version_address(epoch, index)))
        for _ in range(private_refs_per_read):
            block = rng.randrange(_LAYOUT.private_blocks)
            data.append(
                _data(pid, RefType.READ, _LAYOUT.private_address(pid, block))
            )
        reads += 1
        if reads % reads_per_grace == 0:
            # Publish: build the next version, then flip the pointer.
            for index in range(version_blocks):
                data.append(
                    _data(0, RefType.WRITE, version_address(epoch + 1, index))
                )
            data.append(_data(0, RefType.WRITE, pointer))
            epoch += 1
    return _finish("modern-rcu", data, length, instr_fraction, seed,
                   "read-mostly traversals with epoch republication")


def sharded_counter_trace(
    num_processes: int = 4, length: int = 20_000, increments_per_sweep: int = 12,
    private_refs_per_increment: int = 3, instr_fraction: float = 0.5,
    seed: int = 23,
) -> Trace:
    """Per-process counter shards with periodic aggregation sweeps.

    Each process read-modify-writes its own shard block (never
    contended), interleaved with private work.  After every round of
    ``increments_per_sweep`` increments per process, a rotating reader
    sweeps all shards — pulling each dirty shard out of its owner's
    cache — and accumulates into its private total.
    """
    rng = random.Random(seed)
    data: list[TraceRecord] = []
    shard = [
        _LAYOUT.kernel_shared_address(pid) for pid in range(num_processes)
    ]
    sweeper = 0
    while len(data) < length:
        for _ in range(increments_per_sweep):
            for pid in range(num_processes):
                data.append(_data(pid, RefType.READ, shard[pid]))
                data.append(_data(pid, RefType.WRITE, shard[pid]))
                for _ in range(private_refs_per_increment):
                    block = rng.randrange(_LAYOUT.private_blocks)
                    address = _LAYOUT.private_address(pid, block)
                    ref_type = (
                        RefType.WRITE if rng.random() < 0.25 else RefType.READ
                    )
                    data.append(_data(pid, ref_type, address))
        for pid in range(num_processes):
            data.append(_data(sweeper, RefType.READ, shard[pid]))
        total = _LAYOUT.private_address(sweeper, 0)
        data.append(_data(sweeper, RefType.WRITE, total))
        sweeper = (sweeper + 1) % num_processes
    return _finish("modern-sharded-counters", data, length, instr_fraction, seed,
                   "private shards with rotating aggregation sweeps")


MODERN_GENERATORS = {
    "work-stealing": work_stealing_trace,
    "rcu": rcu_read_mostly_trace,
    "sharded-counters": sharded_counter_trace,
}


def modern_traces(length: int = 20_000, num_processes: int = 4) -> Iterator[Trace]:
    """Yield every modern-sharing trace at the given size."""
    for generator in MODERN_GENERATORS.values():
        yield generator(num_processes=num_processes, length=length)
