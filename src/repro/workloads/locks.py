"""Test-and-test-and-set spin locks for synthetic workloads.

The paper's POPS and THOR traces get roughly one-third of their reads
from spins on locks (Section 4.4): the first "test" of a
test-and-test-and-set primitive appears as an ordinary data read,
repeated while the lock is held.  :class:`LockTable` models lock
ownership so the workload generator can emit exactly that reference
pattern — test reads (marked ``spin`` while the lock is held by someone
else), a test-and-set write on acquisition, and a release write.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.layout import AddressSpaceLayout


@dataclass
class Lock:
    """One spin lock and the blocks it protects.

    Attributes:
        index: lock number (names its address via the layout).
        address: the lock word's byte address.
        holder: pid of the current holder, or None when free.
        waiters: pids currently spinning on this lock.
    """

    index: int
    address: int
    holder: int | None = None
    waiters: set[int] = field(default_factory=set)

    @property
    def held(self) -> bool:
        """True while some process holds the lock."""
        return self.holder is not None

    def acquire(self, pid: int) -> None:
        """Take the lock for *pid* (must be free)."""
        if self.holder is not None:
            raise ValueError(f"lock {self.index} already held by {self.holder}")
        self.holder = pid
        self.waiters.discard(pid)

    def release(self, pid: int) -> None:
        """Release the lock (must be held by *pid*)."""
        if self.holder != pid:
            raise ValueError(
                f"lock {self.index} released by {pid} but held by {self.holder}"
            )
        self.holder = None


class LockTable:
    """All locks of one workload."""

    def __init__(self, num_locks: int, layout: AddressSpaceLayout) -> None:
        if num_locks < 0:
            raise ValueError("num_locks must be non-negative")
        self._locks = [
            Lock(index=index, address=layout.lock_address(index))
            for index in range(num_locks)
        ]

    def __len__(self) -> int:
        return len(self._locks)

    def __getitem__(self, index: int) -> Lock:
        return self._locks[index]

    def __iter__(self):
        return iter(self._locks)

    def held_by(self, pid: int) -> list[Lock]:
        """Locks currently held by process *pid*."""
        return [lock for lock in self._locks if lock.holder == pid]
