# Convenience targets for the reproduction. Everything is plain pytest
# underneath; see README.md.

.PHONY: install lint test bench verify docs report ci all

install:
	pip install -e . --no-build-isolation

# Correctness lint (config in pyproject.toml; requires `pip install ruff`).
lint:
	ruff check .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Exhaustive single-block model checking of every protocol.
verify:
	python -m repro verify

# What CI runs (.github/workflows/ci.yml): the tier-1 suite plus
# exhaustive protocol verification, without needing an install.
ci:
	PYTHONPATH=src python -m pytest -x -q
	PYTHONPATH=src python -m repro verify

# Regenerate the machine-derived protocol reference.
docs:
	python tools/gen_protocol_docs.py

# Regenerate the committed full-length evaluation report.
report:
	python -m repro report RESULTS.md --length 200000

all: install test bench verify docs report
