# Convenience targets for the reproduction. Everything is plain pytest
# underneath; see README.md.

.PHONY: install lint test bench bigtrace verify fuzz chaos docs report ci all

install:
	pip install -e . --no-build-isolation

# Correctness lint (config in pyproject.toml; requires `pip install ruff`).
lint:
	ruff check .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Bounded-memory acceptance for the chunked trace store: a ~650 MB
# .ctrc simulated serial/pooled/resumed under a 64 MB RSS ceiling with
# bit-identical digests (docs/TRACESTORE.md).
bigtrace:
	python tools/bigtrace_smoke.py

# Exhaustive single-block model checking of every protocol.
verify:
	python -m repro verify

# Seeded conformance fuzz campaign + golden corpus replay + mutation
# testing (docs/VERIFICATION.md). Deterministic for a fixed seed.
fuzz:
	python -m repro verify --fuzz 100 --seed 1 --jobs 4
	python -m repro verify --corpus tests/corpus --mutation

# Durable-fleet crash-recovery drill: SIGKILL a real worker mid-cell,
# assert bit-identical recovery (docs/SERVICE.md "Durable fleet").
chaos:
	PYTHONPATH=src python -m repro chaos --workers 3 --seed 0

# What CI runs (.github/workflows/ci.yml): the tier-1 suite plus
# exhaustive protocol verification, without needing an install.
ci:
	PYTHONPATH=src python -m pytest -x -q
	PYTHONPATH=src python -m repro verify
	PYTHONPATH=src python -m repro verify --corpus tests/corpus
	PYTHONPATH=src python -m repro verify --fuzz 25 --seed 1 --mutation

# Regenerate the machine-derived protocol reference.
docs:
	python tools/gen_protocol_docs.py

# Regenerate the committed full-length evaluation report.
report:
	python -m repro report RESULTS.md --length 200000

all: install test bench verify docs report
